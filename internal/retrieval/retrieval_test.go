package retrieval

import (
	"math/rand"
	"testing"

	"duo/internal/dataset"
	"duo/internal/models"
	"duo/internal/nn/losses"
	"duo/internal/video"
)

// testSystem builds a tiny trained retrieval engine plus corpus.
func testSystem(t *testing.T) (*Engine, *dataset.Corpus, models.Model) {
	t.Helper()
	c, err := dataset.Generate(dataset.Config{
		Name: "RetrSim", Categories: 4, TrainPerCategory: 6, TestPerCategory: 3,
		Frames: 8, Channels: 3, Height: 12, Width: 12, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	g := models.GeometryOf(c.Train[0])
	m := models.NewC3D(rng, g, 16)
	cfg := models.DefaultTrainConfig()
	cfg.Epochs = 3
	if _, err := models.Train(m, losses.Triplet{Margin: 0.2}, c.Train, cfg); err != nil {
		t.Fatal(err)
	}
	return NewEngine(m, c.Train), c, m
}

func TestEngineRetrieveBasics(t *testing.T) {
	eng, c, _ := testSystem(t)
	q := c.Test[0]
	rs := eng.Retrieve(q, 5)
	if len(rs) != 5 {
		t.Fatalf("got %d results", len(rs))
	}
	for i := 1; i < len(rs); i++ {
		if rs[i].Dist < rs[i-1].Dist {
			t.Fatal("results not sorted by distance")
		}
	}
	if eng.QueryCount() != 1 {
		t.Errorf("query count = %d", eng.QueryCount())
	}
	eng.ResetQueryCount()
	if eng.QueryCount() != 0 {
		t.Error("ResetQueryCount failed")
	}
}

func TestEngineRetrieveClampsM(t *testing.T) {
	eng, c, _ := testSystem(t)
	rs := eng.Retrieve(c.Test[0], 10_000)
	if len(rs) != eng.GallerySize() {
		t.Errorf("len = %d, want gallery size %d", len(rs), eng.GallerySize())
	}
	if got := eng.Retrieve(c.Test[0], 0); len(got) != 0 {
		t.Errorf("m=0 returned %d results", len(got))
	}
}

func TestEngineSelfRetrievalIsFirst(t *testing.T) {
	eng, c, _ := testSystem(t)
	// A gallery video queried against the gallery must return itself first
	// (distance 0).
	q := c.Train[3]
	rs := eng.Retrieve(q, 3)
	if rs[0].ID != q.ID || rs[0].Dist > 1e-9 {
		t.Errorf("self retrieval top-1 = %+v", rs[0])
	}
}

func TestEngineRetrievalIsByCategory(t *testing.T) {
	eng, c, _ := testSystem(t)
	// mAP over test queries must beat chance (1/categories = 0.25).
	if got := EvaluateMAP(eng, c.Test, 6); got <= 0.3 {
		t.Errorf("mAP = %g, want > 0.3 (chance is 0.25)", got)
	}
}

func TestEngineDeterministic(t *testing.T) {
	eng, c, _ := testSystem(t)
	a := IDs(eng.Retrieve(c.Test[1], 6))
	b := IDs(eng.Retrieve(c.Test[1], 6))
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("retrieval not deterministic")
		}
	}
}

func TestClusterMatchesEngine(t *testing.T) {
	eng, c, m := testSystem(t)
	cl := NewLocalCluster(m, c.Train, 3)
	defer cl.Close()
	if cl.Nodes() != 3 {
		t.Fatalf("nodes = %d", cl.Nodes())
	}
	for _, q := range c.Test[:4] {
		a := IDs(eng.Retrieve(q, 6))
		b := IDs(cl.Retrieve(q, 6))
		if len(a) != len(b) {
			t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("query %s: sharded list differs at %d: %v vs %v", q.ID, i, a, b)
			}
		}
	}
	if cl.QueryCount() != 4 {
		t.Errorf("cluster query count = %d", cl.QueryCount())
	}
}

func TestClusterSingleNodeDegenerate(t *testing.T) {
	_, c, m := testSystem(t)
	cl := NewLocalCluster(m, c.Train, 1)
	defer cl.Close()
	rs := cl.Retrieve(c.Test[0], 4)
	if len(rs) != 4 {
		t.Errorf("got %d results", len(rs))
	}
}

type failingTransport struct{}

func (failingTransport) Nearest([]float64, int) ([]Result, error) {
	return nil, errFailingNode
}
func (failingTransport) Close() error { return nil }

var errFailingNode = errNode{}

type errNode struct{}

func (errNode) Error() string { return "node down" }

func TestClusterDegradesOnNodeFailure(t *testing.T) {
	_, c, m := testSystem(t)
	healthy := NewLocalCluster(m, c.Train, 2)
	defer healthy.Close()
	// Replace one node with a failing transport.
	mixed := NewCluster(m, []Transport{healthy.nodes[0], failingTransport{}})
	rs, err := mixed.RetrieveErr(c.Test[0], 4)
	if err == nil {
		t.Error("expected node error to be reported")
	}
	if len(rs) == 0 {
		t.Error("expected partial results from the healthy node")
	}
}

// pick selects the videos at the given indices.
func pick(vs []*video.Video, idxs []int) []*video.Video {
	out := make([]*video.Video, 0, len(idxs))
	for _, i := range idxs {
		out = append(out, vs[i])
	}
	return out
}

func TestTCPClusterMatchesLocal(t *testing.T) {
	eng, c, m := testSystem(t)

	// Shard the gallery across two TCP node servers.
	var half [2][]int
	for i := range c.Train {
		half[i%2] = append(half[i%2], i)
	}
	var nodes []Transport
	var servers []*NodeServer
	for _, idxs := range half {
		shard := NewShard(m, pick(c.Train, idxs))
		srv, err := ServeNode("127.0.0.1:0", shard)
		if err != nil {
			t.Fatal(err)
		}
		servers = append(servers, srv)
		tr, err := DialNode(srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, tr)
	}
	cl := NewCluster(m, nodes)
	defer func() {
		cl.Close()
		for _, s := range servers {
			s.Close()
		}
	}()

	for _, q := range c.Test[:3] {
		a := IDs(eng.Retrieve(q, 5))
		b, err := cl.RetrieveErr(q, 5)
		if err != nil {
			t.Fatal(err)
		}
		bi := IDs(b)
		for i := range a {
			if a[i] != bi[i] {
				t.Fatalf("TCP cluster differs at %d: %v vs %v", i, a, bi)
			}
		}
	}
}

func TestTCPTransportClosedErrors(t *testing.T) {
	_, c, m := testSystem(t)
	shard := NewShard(m, c.Train[:4])
	srv, err := ServeNode("127.0.0.1:0", shard)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	tr, err := DialNode(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Nearest([]float64{1}, 1); err == nil {
		t.Error("Nearest on closed transport succeeded")
	}
	if err := tr.Close(); err != nil {
		t.Error("double close errored")
	}
}

func TestNodeServerRejectsNegativeM(t *testing.T) {
	_, c, m := testSystem(t)
	shard := NewShard(m, c.Train[:4])
	srv, err := ServeNode("127.0.0.1:0", shard)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	tr, err := DialNode(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	if _, err := tr.Nearest(make([]float64, m.FeatureDim()), -1); err == nil {
		t.Error("negative m accepted")
	}
}

func TestEvaluateQualityBundle(t *testing.T) {
	eng, c, _ := testSystem(t)
	q := Evaluate(eng, c.Test, 6)
	if q.MAP <= 0 || q.MAP > 1 {
		t.Errorf("MAP = %g", q.MAP)
	}
	if q.RecallAt1 < 0 || q.RecallAt1 > 1 {
		t.Errorf("Recall@1 = %g", q.RecallAt1)
	}
	if q.MRR < q.MAP-0.5 {
		t.Errorf("MRR %g implausibly below MAP %g", q.MRR, q.MAP)
	}
	// MRR ≥ Recall@1 always (rank-1 hits contribute 1 to both).
	if q.MRR < q.RecallAt1-1e-12 {
		t.Errorf("MRR %g < Recall@1 %g", q.MRR, q.RecallAt1)
	}
}

func TestClusterSurvivesNodeCrash(t *testing.T) {
	eng, c, m := testSystem(t)
	_ = eng
	// Two TCP nodes; kill one mid-session and verify the coordinator
	// degrades to partial results with a reported error.
	shardA := NewShard(m, c.Train[:len(c.Train)/2])
	shardB := NewShard(m, c.Train[len(c.Train)/2:])
	srvA, err := ServeNode("127.0.0.1:0", shardA)
	if err != nil {
		t.Fatal(err)
	}
	defer srvA.Close()
	srvB, err := ServeNode("127.0.0.1:0", shardB)
	if err != nil {
		t.Fatal(err)
	}
	trA, err := DialNode(srvA.Addr())
	if err != nil {
		t.Fatal(err)
	}
	trB, err := DialNode(srvB.Addr())
	if err != nil {
		t.Fatal(err)
	}
	cl := NewCluster(m, []Transport{trA, trB})
	defer cl.Close()

	q := c.Test[0]
	if rs, err := cl.RetrieveErr(q, 5); err != nil || len(rs) != 5 {
		t.Fatalf("healthy cluster: %v, %d results", err, len(rs))
	}

	// Crash node B.
	if err := srvB.Close(); err != nil {
		t.Fatal(err)
	}
	rs, err := cl.RetrieveErr(q, 5)
	if err == nil {
		t.Error("crashed node did not surface an error")
	}
	if len(rs) == 0 {
		t.Error("no partial results from the surviving node")
	}
	// Every surviving result must come from shard A.
	inA := map[string]bool{}
	for _, v := range c.Train[:len(c.Train)/2] {
		inA[v.ID] = true
	}
	for _, r := range rs {
		if !inA[r.ID] {
			t.Errorf("result %s not from the surviving shard", r.ID)
		}
	}
}
