package retrieval

import (
	"errors"
	"math/rand"
	"sync"
	"time"

	"duo/internal/telemetry"
	"duo/internal/trace"
)

// RetryConfig parameterizes a RetryTransport. The zero value selects the
// defaults noted per field.
type RetryConfig struct {
	// MaxAttempts is the total number of tries per call, including the
	// first (default 3).
	MaxAttempts int
	// BaseDelay is the backoff before the first retry (default 10ms).
	BaseDelay time.Duration
	// MaxDelay caps the exponential backoff (default 1s).
	MaxDelay time.Duration
	// Seed drives the deterministic jitter (default 1).
	Seed int64
	// Sleep is the delay function; tests inject a recorder to assert the
	// schedule without waiting (default time.Sleep).
	Sleep func(time.Duration)
}

func (c *RetryConfig) applyDefaults() {
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.BaseDelay <= 0 {
		c.BaseDelay = 10 * time.Millisecond
	}
	if c.MaxDelay <= 0 {
		c.MaxDelay = time.Second
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Sleep == nil {
		c.Sleep = time.Sleep //duolint:allow walltime injectable-sleep default; tests pin a recording stub
	}
}

// RetryTransport wraps a Transport with capped exponential backoff and
// deterministic jitter: attempt k (0-based) sleeps
// min(MaxDelay, BaseDelay·2^k)/2 · (1 + u) with u ~ U[0,1) drawn from a
// seeded RNG, so two runs with the same seed retry on an identical
// schedule — chaos tests stay reproducible.
//
// A breaker fast-fail (ErrBreakerOpen) is not retried: backing off against
// a breaker that will stay open for its whole cooldown only adds latency.
// A load shed (ErrOverloaded) IS retried: the node is alive and refusing
// work to protect itself, and the backoff is exactly the pressure-release
// valve that lets the spike pass before the next attempt.
type RetryTransport struct {
	inner Transport
	cfg   RetryConfig

	mu      sync.Mutex
	rng     *rand.Rand
	retries int64

	// telRetries mirrors the retries counter into a telemetry registry.
	// Only genuine re-attempts count: a breaker fast-fail aborts the loop
	// before the retry bookkeeping, so it is never recorded here.
	// telOverloads counts attempts refused with ErrOverloaded (each such
	// attempt is retryable, so the counter can exceed the call count).
	telRetries   *telemetry.Counter
	telAttempts  *telemetry.Counter
	telOverloads *telemetry.Counter
}

var _ Transport = (*RetryTransport)(nil)

// NewRetryTransport wraps inner with retry-with-backoff semantics.
func NewRetryTransport(inner Transport, cfg RetryConfig) *RetryTransport {
	cfg.applyDefaults()
	return &RetryTransport{inner: inner, cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// SetTelemetry wires the transport's retry counters into the registry
// under the given name prefix (e.g. "cluster.node0.retry"); nil disables.
func (t *RetryTransport) SetTelemetry(r *telemetry.Registry, prefix string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.telRetries = r.Counter(prefix + ".retries")
	t.telAttempts = r.Counter(prefix + ".attempts")
	t.telOverloads = r.Counter(prefix + ".overloads")
}

// Retries returns the total number of retry attempts performed (attempts
// beyond the first per call).
func (t *RetryTransport) Retries() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.retries
}

// backoff returns the jittered delay before retry k (0-based).
func (t *RetryTransport) backoff(k int) time.Duration {
	d := t.cfg.BaseDelay << uint(k)
	if d <= 0 || d > t.cfg.MaxDelay { // <<-overflow guards land on the cap
		d = t.cfg.MaxDelay
	}
	t.mu.Lock()
	u := t.rng.Float64()
	t.mu.Unlock()
	return time.Duration(float64(d) / 2 * (1 + u))
}

// Nearest implements Transport.
func (t *RetryTransport) Nearest(feat []float64, m int) ([]Result, error) {
	return t.do(func() ([]Result, error) { return t.inner.Nearest(feat, m) })
}

// NearestTraced implements TracedTransport: every attempt, including
// retries, carries the same span context down the chain.
func (t *RetryTransport) NearestTraced(tc trace.Context, feat []float64, m int) ([]Result, error) {
	return t.do(func() ([]Result, error) { return nearestVia(t.inner, tc, feat, m) })
}

// do runs one call through the retry loop.
func (t *RetryTransport) do(call func() ([]Result, error)) ([]Result, error) {
	var lastErr error
	for k := 0; k < t.cfg.MaxAttempts; k++ {
		if k > 0 {
			t.mu.Lock()
			t.retries++
			t.mu.Unlock()
			t.telRetries.Inc()
			t.cfg.Sleep(t.backoff(k - 1))
		}
		t.telAttempts.Inc()
		rs, err := call()
		if err == nil {
			return rs, nil
		}
		lastErr = err
		if errors.Is(err, ErrOverloaded) {
			t.telOverloads.Inc()
		}
		if errors.Is(err, ErrBreakerOpen) {
			break
		}
	}
	return nil, lastErr
}

// Stats implements StatsPuller by forwarding, outside the retry loop: a
// stats pull is an observability probe, not serving traffic, so a failed
// pull reports immediately instead of backing off.
func (t *RetryTransport) Stats(includeRings bool) (NodeStats, error) {
	return pullStats(t.inner, includeRings)
}

// Close implements Transport.
func (t *RetryTransport) Close() error { return t.inner.Close() }
