package retrieval

import (
	"errors"
	"sync"

	"duo/internal/telemetry"
)

// This file is the node-side half of the fleet observability plane: a
// stats probe that rides the existing nearest wire protocol as a
// nil-pointer extension (like trace contexts and mux IDs before it), so
// a coordinator can pull every data node's telemetry snapshot over the
// connections it already holds. The probe is answered before admission
// control — observability must stay readable while a node is shedding,
// or the fleet view goes dark exactly when an operator needs it.

// ErrStatsUnsupported is returned when a transport (or the node behind
// it) predates the stats protocol: an old server decodes the probe as an
// empty scan and answers without a stats payload, which the client maps
// to this sentinel instead of inventing an empty snapshot.
var ErrStatsUnsupported = errors.New("retrieval: node does not support stats")

// statsRequest asks a node for its telemetry snapshot. It rides
// nearestRequest as a nil pointer field, so a request without a probe is
// byte-identical to the pre-stats protocol and an old server simply
// ignores the field (wire_test.go pins both).
type statsRequest struct {
	// Rings selects whether the node includes its telemetry rings
	// (recent-sample windows — flight-recorder material, potentially
	// large). Default off: merged fleet views drop rings anyway.
	Rings bool
}

// statsResponse is the node's answer, riding nearestResponse the same
// way.
type statsResponse struct {
	// Snapshot is the node registry's state; empty (never nil on a new
	// server) when the node runs without telemetry.
	Snapshot *telemetry.Snapshot
	// Size is the node's indexed entry count.
	Size int
	// Addr is the node's listen address, for fleet-view labelling.
	Addr string
}

// NodeStats is one node's self-report, as surfaced to coordinator-side
// callers.
type NodeStats struct {
	// Snapshot is never nil on success.
	Snapshot *telemetry.Snapshot
	// Size is the node's indexed entry count.
	Size int
	// Addr labels the node ("local" for in-process transports).
	Addr string
}

// StatsPuller is the optional Transport extension for the fleet
// observability plane. Decorators (retry, breaker) forward it unguarded:
// a stats pull is an observability probe, not serving traffic, so it is
// never retried, never counted against the breaker, and still flows
// while the breaker holds the node open — a fleet view of a sick node is
// worth more than one of a healthy node.
type StatsPuller interface {
	// Stats returns the node's telemetry snapshot and index size.
	Stats(includeRings bool) (NodeStats, error)
}

// pullStats dispatches to the transport's stats extension when it has
// one, and reports ErrStatsUnsupported otherwise.
func pullStats(t Transport, includeRings bool) (NodeStats, error) {
	if sp, ok := t.(StatsPuller); ok {
		return sp.Stats(includeRings)
	}
	return NodeStats{}, ErrStatsUnsupported
}

// FleetNode is one node's entry in a FleetView: its self-report, or the
// error that prevented one.
type FleetNode struct {
	// Node is the node's index in the cluster.
	Node int `json:"node"`
	// Addr and Size echo the node's self-report.
	Addr string `json:"addr,omitempty"`
	Size int    `json:"size,omitempty"`
	// Err is the pull failure, "" on success. A node that predates the
	// stats protocol reports ErrStatsUnsupported here rather than
	// failing the whole view.
	Err string `json:"err,omitempty"`
	// Snapshot is the node's telemetry (nil when Err is set).
	Snapshot *telemetry.Snapshot `json:"snapshot,omitempty"`
}

// FleetView is the cluster-wide observability rollup behind /fleet.json:
// the deterministic merge of every reachable node's snapshot, with the
// per-node breakdown retained alongside (merging loses per-node skew —
// a fleet p99 cannot localize a slow node, its per-node snapshot can).
type FleetView struct {
	// Nodes and Reachable count cluster nodes and successful pulls.
	Nodes     int `json:"nodes"`
	Reachable int `json:"reachable"`
	// Size is the summed index size of the reachable nodes.
	Size int `json:"size"`
	// Fleet is the merged node telemetry (telemetry.MergeAll over the
	// reachable nodes, in node order).
	Fleet *telemetry.Snapshot `json:"fleet"`
	// Coordinator is the coordinator's own registry snapshot, kept
	// separate from the node merge: cluster.* metrics describe the
	// scatter/gather layer, not any data node.
	Coordinator *telemetry.Snapshot `json:"coordinator,omitempty"`
	// PerNode is the per-node breakdown, indexed by node.
	PerNode []FleetNode `json:"per_node"`
}

// FleetSnapshot pulls every node's stats concurrently and folds them
// into a FleetView. Unreachable (or stats-unsupported) nodes degrade to
// an Err entry in the breakdown rather than failing the view — the
// observability plane is best-effort by design. The only error is a
// merge failure (histogram layout mismatch across nodes), which means
// the fleet is running mixed incompatible builds and the merged view
// would be a lie.
func (c *Cluster) FleetSnapshot(includeRings bool) (*FleetView, error) {
	view := &FleetView{Nodes: len(c.nodes), PerNode: make([]FleetNode, len(c.nodes))}
	var wg sync.WaitGroup
	for i, node := range c.nodes {
		view.PerNode[i].Node = i
		wg.Add(1)
		go func(i int, node Transport) {
			defer wg.Done()
			st, err := pullStats(node, includeRings)
			if err != nil {
				view.PerNode[i].Err = err.Error()
				return
			}
			view.PerNode[i].Addr = st.Addr
			view.PerNode[i].Size = st.Size
			view.PerNode[i].Snapshot = st.Snapshot
		}(i, node)
	}
	wg.Wait()

	snaps := make([]*telemetry.Snapshot, 0, len(view.PerNode))
	for i := range view.PerNode {
		if view.PerNode[i].Err != "" {
			continue
		}
		view.Reachable++
		view.Size += view.PerNode[i].Size
		snaps = append(snaps, view.PerNode[i].Snapshot)
	}
	fleet, err := telemetry.MergeAll(snaps...)
	if err != nil {
		return nil, err
	}
	view.Fleet = fleet

	c.mu.Lock()
	reg := c.reg
	c.mu.Unlock()
	if reg != nil {
		view.Coordinator = reg.Snapshot()
		if !includeRings {
			view.Coordinator.Rings = map[string][]float64{}
		}
	}
	return view, nil
}
