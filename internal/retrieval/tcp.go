package retrieval

import (
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"duo/internal/telemetry"
	"duo/internal/trace"
)

// Default wire-protocol deadlines. Queries embed on the client and scan an
// in-memory shard on the node, so seconds are already generous; the idle
// timeout only bounds how long a node keeps a silent connection around.
const (
	// DefaultCallTimeout bounds one client-side request/response exchange.
	DefaultCallTimeout = 10 * time.Second
	// DefaultIdleTimeout is how long a node waits for the next request on
	// a persistent connection before dropping it.
	DefaultIdleTimeout = 2 * time.Minute
	// DefaultWriteTimeout bounds writing one response on the node.
	DefaultWriteTimeout = 30 * time.Second
)

// nearestRequest and nearestResponse form the wire protocol between the
// coordinator and a TCP data node: length-delimited gob messages over a
// persistent connection.
//
// TC carries the coordinator's span context so node-side spans parent
// correctly across the process boundary. It is a pointer precisely
// because gob omits nil pointer fields from the encoded value: an
// untraced request is byte-identical to the pre-trace protocol, and a
// gob decoder ignores wire fields its local struct lacks, so an old
// server simply drops the context (wire_test.go pins both directions).
//
// ID multiplexes concurrent requests over one connection: a response
// echoes its request's ID, so replies may arrive out of order. The same
// gob property keeps this extension compatible both ways: ID 0 is omitted
// from the wire entirely, an old server ignores the field and serializes
// per connection (so its unnumbered replies arrive in request order and
// the client matches them FIFO), and an old client never sends an ID, for
// which the server falls back to serialized in-order handling.
// Stats turns the message into a telemetry probe instead of a scan (see
// stats.go); the same nil-omission property keeps scans byte-identical
// to the pre-stats protocol, and an old server that ignores the field
// answers the probe as an empty scan, which the client maps to
// ErrStatsUnsupported.
type nearestRequest struct {
	Feat  []float64
	M     int
	TC    *trace.Context
	ID    uint64
	Stats *statsRequest
}

// nearestResponse's Overloaded flag is how ErrOverloaded crosses the wire:
// a typed sentinel can't ride a string field, so the client re-wraps the
// flag into ErrOverloaded and errors.Is works across the process boundary.
// An old client ignores the flag and still sees the Err text.
type nearestResponse struct {
	Results    []Result
	Err        string
	ID         uint64
	Overloaded bool
	Stats      *statsResponse
}

// NodeServerConfig parameterizes a NodeServer's deadlines and admission
// limits. The zero value selects the package defaults (and unbounded
// admission); negative durations disable the deadline.
type NodeServerConfig struct {
	// IdleTimeout is the per-request read deadline: the maximum wait for
	// the next complete request on a connection.
	IdleTimeout time.Duration
	// WriteTimeout is the per-response write deadline.
	WriteTimeout time.Duration
	// Trace, when non-nil, records one node.serve span per request. A
	// request carrying a coordinator span context parents the span
	// remotely under it (stitched back together by duotrace).
	Trace *trace.Tracer
	// Admission bounds concurrent request handling; excess load is shed
	// with ErrOverloaded instead of queueing without bound. The zero value
	// admits everything (the pre-overload behaviour).
	Admission AdmissionConfig
	// Telemetry, when non-nil, receives the admission counters under the
	// "node.admission" prefix.
	Telemetry *telemetry.Registry
}

func (c *NodeServerConfig) applyDefaults() {
	if c.IdleTimeout == 0 {
		c.IdleTimeout = DefaultIdleTimeout
	}
	if c.WriteTimeout == 0 {
		c.WriteTimeout = DefaultWriteTimeout
	}
}

// NodeServer serves one shard over TCP. Multiplexed requests (ID != 0) are
// handled concurrently, gated by the admission config; legacy unnumbered
// requests are handled serially in request order, exactly like the
// pre-multiplexing server.
type NodeServer struct {
	shard GalleryIndex
	ln    net.Listener
	cfg   NodeServerConfig
	adm   *admission

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// ServeNode starts serving the index on addr (use "127.0.0.1:0" for an
// ephemeral port) with default deadlines and returns immediately. Any
// GalleryIndex works: exact shards and product-quantized indexes share the
// wire protocol.
func ServeNode(addr string, shard GalleryIndex) (*NodeServer, error) {
	return ServeNodeConfig(addr, shard, NodeServerConfig{})
}

// ServeNodeConfig is ServeNode with explicit configuration.
func ServeNodeConfig(addr string, shard GalleryIndex, cfg NodeServerConfig) (*NodeServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("retrieval: listen %s: %w", addr, err)
	}
	cfg.applyDefaults()
	s := &NodeServer{
		shard: shard, ln: ln, cfg: cfg,
		adm:   newAdmission(cfg.Admission, resolveAdmissionTel(cfg.Telemetry, "node.admission")),
		conns: make(map[net.Conn]struct{}),
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the server's listen address.
func (s *NodeServer) Addr() string { return s.ln.Addr().String() }

// AdmissionStats is a point-in-time snapshot of a NodeServer's admission
// accounting (the counter mirror lives under "node.admission" when the
// server has a telemetry registry).
type AdmissionStats struct {
	// Admitted counts requests that got an in-flight slot.
	Admitted int64
	// Sheds counts requests refused with ErrOverloaded.
	Sheds int64
	// HighWater is the peak concurrent in-flight count observed.
	HighWater int
}

// AdmissionStats returns the server's admission accounting snapshot.
func (s *NodeServer) AdmissionStats() AdmissionStats {
	return AdmissionStats{
		Admitted:  s.adm.Served(),
		Sheds:     s.adm.Sheds(),
		HighWater: s.adm.HighWater(),
	}
}

func (s *NodeServer) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

// shedResponse is the well-framed refusal for a request that lost
// admission; id echoes the request so multiplexed clients match it.
func shedResponse(id uint64) nearestResponse {
	return nearestResponse{ID: id, Err: "node overloaded", Overloaded: true}
}

func (s *NodeServer) serveConn(conn net.Conn) {
	defer s.wg.Done()
	// handlers tracks this connection's in-flight request goroutines, so
	// the connection (and Close) waits for them before tearing down.
	var handlers sync.WaitGroup
	var wmu sync.Mutex
	defer func() {
		handlers.Wait()
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	for {
		if s.cfg.IdleTimeout > 0 {
			conn.SetReadDeadline(time.Now().Add(s.cfg.IdleTimeout)) //duolint:allow walltime socket deadlines are wall-clock by definition; no result bit depends on them
		}
		var req nearestRequest
		if err := dec.Decode(&req); err != nil {
			return // client hung up, idled out, or connection torn down
		}
		if req.Stats != nil {
			// Telemetry probe: answered inline from the read loop, BEFORE
			// admission — a snapshot is cheap, and observability must stay
			// readable while the node is shedding, or the fleet view goes
			// dark exactly when an operator needs it.
			if !s.writeResp(conn, enc, &wmu, s.handleStats(req)) {
				return
			}
			continue
		}
		if req.ID == 0 {
			// Legacy client: it has exactly one request in flight on this
			// connection and expects the reply before the next request, so
			// handling stays inline and serialized. Admission still applies:
			// under saturation a queued ticket blocks right here — which is
			// the natural backpressure for a serialized stream.
			tk := s.adm.reserve()
			if tk == ticketShed {
				if !s.writeResp(conn, enc, &wmu, shedResponse(0)) {
					return
				}
				continue
			}
			if tk == ticketQueued {
				s.adm.acquire()
			}
			resp := s.handle(req)
			s.adm.release()
			if !s.writeResp(conn, enc, &wmu, resp) {
				return
			}
			continue
		}
		// Multiplexed client: sheds are answered immediately from the read
		// loop (shedding must stay cheap — that is its whole point), and
		// admitted requests are dispatched concurrently.
		switch s.adm.reserve() {
		case ticketShed:
			if !s.writeResp(conn, enc, &wmu, shedResponse(req.ID)) {
				return
			}
		case ticketDirect:
			handlers.Add(1)
			go func(req nearestRequest) {
				defer handlers.Done()
				resp := s.handle(req)
				s.adm.release()
				s.writeResp(conn, enc, &wmu, resp)
			}(req)
		case ticketQueued:
			handlers.Add(1)
			go func(req nearestRequest) {
				defer handlers.Done()
				s.adm.acquire()
				resp := s.handle(req)
				s.adm.release()
				s.writeResp(conn, enc, &wmu, resp)
			}(req)
		}
	}
}

// handle serves one admitted request (span + shard scan); it never touches
// the connection.
func (s *NodeServer) handle(req nearestRequest) nearestResponse {
	var tc trace.Context
	if req.TC != nil {
		tc = *req.TC
	}
	sp := s.cfg.Trace.StartCtx(tc, "node.serve")
	sp.SetInt("m", int64(req.M))
	resp := nearestResponse{ID: req.ID}
	if req.M < 0 {
		resp.Err = fmt.Sprintf("negative m %d", req.M)
	} else {
		resp.Results = s.shard.Nearest(req.Feat, req.M)
	}
	sp.SetInt("results", int64(len(resp.Results)))
	if resp.Err != "" {
		sp.SetStr("error", resp.Err)
	}
	sp.End()
	return resp
}

// handleStats answers a telemetry probe from the node's registry. A node
// without telemetry reports an empty snapshot (the merge identity) — the
// node is reachable and supports the protocol, it just has nothing to say.
func (s *NodeServer) handleStats(req nearestRequest) nearestResponse {
	snap := s.cfg.Telemetry.Snapshot()
	if !req.Stats.Rings {
		snap.Rings = map[string][]float64{}
	}
	return nearestResponse{ID: req.ID, Stats: &statsResponse{
		Snapshot: snap,
		Size:     s.shard.Size(),
		Addr:     s.Addr(),
	}}
}

// writeResp encodes one response under the connection's write mutex (gob
// frames must not interleave) and write deadline. A failed write closes
// the connection so the read loop notices promptly; false means the
// connection is gone.
func (s *NodeServer) writeResp(conn net.Conn, enc *gob.Encoder, wmu *sync.Mutex, resp nearestResponse) bool {
	wmu.Lock()
	defer wmu.Unlock()
	if s.cfg.WriteTimeout > 0 {
		conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout)) //duolint:allow walltime socket deadlines are wall-clock by definition; no result bit depends on them
	}
	if err := enc.Encode(&resp); err != nil {
		conn.Close()
		return false
	}
	return true
}

// Close stops accepting, tears down open connections, and waits for the
// handlers to finish.
func (s *NodeServer) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

// TCPConfig parameterizes a TCPTransport.
type TCPConfig struct {
	// Timeout bounds one request/response exchange, including the dial
	// (≤ 0 disables deadlines; DialNode uses DefaultCallTimeout).
	Timeout time.Duration
	// Conns is the connection-pool size (default 1). Requests multiplex
	// over every connection concurrently either way; a pool only adds
	// parallel TCP streams under heavy fan-out.
	Conns int
}

func (c *TCPConfig) applyDefaults() {
	if c.Conns <= 0 {
		c.Conns = 1
	}
}

// muxReply carries a matched response (or the connection's fatal error)
// back to the waiting caller.
type muxReply struct {
	resp nearestResponse
	err  error
}

// muxConn is one multiplexed connection: a dedicated reader goroutine
// decodes responses and hands each to its waiting caller by request ID
// (or FIFO, for unnumbered replies from a legacy server — which serializes
// per connection, so arrival order IS request order). Any transport-level
// error kills the whole connection: gob streams are stateful, and a
// half-read message would desync every later one.
type muxConn struct {
	conn net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder
	wmu  sync.Mutex // gob writes must not interleave

	mu      sync.Mutex
	pending map[uint64]chan muxReply
	order   []uint64 // FIFO of outstanding IDs, for legacy unnumbered replies
	dead    bool
}

// dialMux establishes one multiplexed connection and starts its reader.
func dialMux(addr string, timeout time.Duration) (*muxConn, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("retrieval: dial %s: %w", addr, err)
	}
	c := &muxConn{
		conn: conn, enc: gob.NewEncoder(conn), dec: gob.NewDecoder(conn),
		pending: make(map[uint64]chan muxReply),
	}
	go c.readLoop()
	return c, nil
}

func (c *muxConn) readLoop() {
	for {
		var resp nearestResponse
		if err := c.dec.Decode(&resp); err != nil {
			c.fail(fmt.Errorf("retrieval: recv: %w", err))
			return
		}
		c.deliver(resp)
	}
}

// deliver routes one decoded response to its caller.
func (c *muxConn) deliver(resp nearestResponse) {
	c.mu.Lock()
	id := resp.ID
	if id == 0 && len(c.order) > 0 {
		id = c.order[0]
	}
	ch := c.pending[id]
	delete(c.pending, id)
	c.dropOrderLocked(id)
	c.mu.Unlock()
	if ch != nil {
		ch <- muxReply{resp: resp}
	}
}

func (c *muxConn) dropOrderLocked(id uint64) {
	for i, v := range c.order {
		if v == id {
			c.order = append(c.order[:i], c.order[i+1:]...)
			return
		}
	}
}

// fail marks the connection dead, closes it, and errors out every waiter.
func (c *muxConn) fail(err error) {
	c.mu.Lock()
	if c.dead {
		c.mu.Unlock()
		return
	}
	c.dead = true
	pend := c.pending
	c.pending = make(map[uint64]chan muxReply)
	c.order = nil
	c.mu.Unlock()
	c.conn.Close()
	for _, ch := range pend {
		ch <- muxReply{err: err}
	}
}

func (c *muxConn) broken() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dead
}

// register reserves a reply channel for the request ID (buffered: delivery
// never blocks the reader on a caller that already timed out).
func (c *muxConn) register(id uint64) (chan muxReply, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.dead {
		return nil, errors.New("retrieval: send: connection lost")
	}
	ch := make(chan muxReply, 1)
	c.pending[id] = ch
	c.order = append(c.order, id)
	return ch, nil
}

func (c *muxConn) unregister(id uint64) {
	c.mu.Lock()
	delete(c.pending, id)
	c.dropOrderLocked(id)
	c.mu.Unlock()
}

// call registers the request and encodes it in one critical section: the
// FIFO order slice must reflect actual wire order, and two concurrent
// callers could otherwise register in one order and write in the other —
// misrouting every legacy (unnumbered) reply after the inversion.
func (c *muxConn) call(req *nearestRequest, timeout time.Duration) (chan muxReply, error) {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	ch, err := c.register(req.ID)
	if err != nil {
		return nil, err
	}
	if timeout > 0 {
		c.conn.SetWriteDeadline(time.Now().Add(timeout)) //duolint:allow walltime socket deadlines are wall-clock by definition; no result bit depends on them
	}
	if err := c.enc.Encode(req); err != nil {
		c.unregister(req.ID)
		return nil, fmt.Errorf("retrieval: send: %w", err)
	}
	return ch, nil
}

// TCPTransport is the coordinator-side client for a TCP data node. It is
// safe for concurrent use: requests carry IDs and multiplex over a small
// connection pool, so concurrent callers dispatch in parallel instead of
// serializing on one gob stream.
//
// Every call runs under a deadline, and any transport-level error
// (timeout, broken pipe, decode failure) discards the affected connection:
// in-flight calls on it fail, and the next call transparently redials with
// fresh codec state instead of poisoning the session.
type TCPTransport struct {
	addr   string
	cfg    TCPConfig
	nextID atomic.Uint64

	mu         sync.Mutex
	slots      []*muxConn
	dialed     []bool // slot ever dialed (redials count as reconnects)
	rr         int
	closed     bool
	reconnects int64
}

var _ Transport = (*TCPTransport)(nil)
var _ StatsPuller = (*TCPTransport)(nil)

// DialNode connects to a NodeServer with the default per-call deadline.
func DialNode(addr string) (*TCPTransport, error) {
	return DialNodeConfig(addr, TCPConfig{Timeout: DefaultCallTimeout})
}

// DialNodeTimeout connects to a NodeServer with an explicit per-call
// deadline covering dial, send, and receive (≤ 0 disables deadlines).
func DialNodeTimeout(addr string, timeout time.Duration) (*TCPTransport, error) {
	return DialNodeConfig(addr, TCPConfig{Timeout: timeout})
}

// DialNodeConfig connects to a NodeServer with full transport
// configuration; the first pool connection is dialed eagerly so
// configuration errors surface at construction.
func DialNodeConfig(addr string, cfg TCPConfig) (*TCPTransport, error) {
	cfg.applyDefaults()
	t := &TCPTransport{
		addr: addr, cfg: cfg,
		slots:  make([]*muxConn, cfg.Conns),
		dialed: make([]bool, cfg.Conns),
	}
	c, err := dialMux(addr, t.dialTimeout())
	if err != nil {
		return nil, err
	}
	t.slots[0] = c
	t.dialed[0] = true
	return t, nil
}

// Reconnects returns how many times the transport re-established a
// connection after a transport error (initial pool dials don't count).
func (t *TCPTransport) Reconnects() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.reconnects
}

func (t *TCPTransport) dialTimeout() time.Duration {
	if t.cfg.Timeout > 0 {
		return t.cfg.Timeout
	}
	return DefaultCallTimeout
}

// slot picks the next pool connection round-robin, redialing dead slots.
func (t *TCPTransport) slot() (*muxConn, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil, errors.New("retrieval: transport closed")
	}
	i := t.rr % len(t.slots)
	t.rr++
	c := t.slots[i]
	if c == nil || c.broken() {
		nc, err := dialMux(t.addr, t.dialTimeout())
		if err != nil {
			return nil, err
		}
		if t.dialed[i] {
			t.reconnects++
		}
		t.dialed[i] = true
		t.slots[i] = nc
		c = nc
	}
	return c, nil
}

// Nearest implements Transport.
func (t *TCPTransport) Nearest(feat []float64, m int) ([]Result, error) {
	return t.NearestTraced(trace.Context{}, feat, m)
}

// roundTrip sends one request over a pool connection and waits for its
// reply under the per-call deadline. It assigns the request's mux ID and
// is the shared exchange path for scans (NearestTraced) and telemetry
// probes (Stats) — one deadline/failure discipline for both.
func (t *TCPTransport) roundTrip(req *nearestRequest) (nearestResponse, error) {
	c, err := t.slot()
	if err != nil {
		return nearestResponse{}, err
	}
	req.ID = t.nextID.Add(1)
	ch, err := c.call(req, t.cfg.Timeout)
	if err != nil {
		c.fail(err)
		return nearestResponse{}, err
	}
	var reply muxReply
	if t.cfg.Timeout > 0 {
		timer := time.NewTimer(t.cfg.Timeout) //duolint:allow walltime per-call response deadline; replaces the old conn-wide SetDeadline, no result bit depends on it
		select {
		case reply = <-ch:
			timer.Stop()
		case <-timer.C:
			// A response deadline is a transport error: the stream may now
			// hold a stale reply we'd mismatch, so the connection dies with
			// every other call in flight on it — same blast radius as the old
			// conn-wide SetDeadline.
			err := fmt.Errorf("retrieval: recv %s: deadline exceeded after %v", t.addr, t.cfg.Timeout)
			c.fail(err)
			reply = muxReply{err: err}
		}
	} else {
		reply = <-ch
	}
	return reply.resp, reply.err
}

// NearestTraced implements TracedTransport: the span context rides the
// request's optional TC field, so a traced node server parents its
// node.serve span under the coordinator's node span. A zero context adds
// nothing to the encoded request.
func (t *TCPTransport) NearestTraced(tc trace.Context, feat []float64, m int) ([]Result, error) {
	req := nearestRequest{Feat: feat, M: m}
	if tc.Valid() {
		req.TC = &tc
	}
	resp, err := t.roundTrip(&req)
	if err != nil {
		return nil, err
	}
	if resp.Overloaded {
		// A shed arrives as a complete, well-framed response: the stream is
		// in sync and the connection stays up — only this request was refused.
		return nil, fmt.Errorf("retrieval: node %s: %w", t.addr, ErrOverloaded)
	}
	if resp.Err != "" {
		// A node-side application error likewise keeps the connection.
		return nil, fmt.Errorf("retrieval: node error: %s", resp.Err)
	}
	return resp.Results, nil
}

// Stats implements StatsPuller over the wire. The probe shares the scan
// path's connections and deadlines but bypasses node-side admission, so
// it answers even while the node sheds. An old server answers the probe
// as an empty scan (no stats payload), which maps to ErrStatsUnsupported.
func (t *TCPTransport) Stats(includeRings bool) (NodeStats, error) {
	req := nearestRequest{Stats: &statsRequest{Rings: includeRings}}
	resp, err := t.roundTrip(&req)
	if err != nil {
		return NodeStats{}, err
	}
	if resp.Stats == nil {
		return NodeStats{}, fmt.Errorf("retrieval: node %s: %w", t.addr, ErrStatsUnsupported)
	}
	snap := resp.Stats.Snapshot
	if snap == nil {
		// gob omits zero-valued fields; an empty snapshot decodes as nil.
		snap = &telemetry.Snapshot{}
	}
	return NodeStats{Snapshot: snap, Size: resp.Stats.Size, Addr: resp.Stats.Addr}, nil
}

// Close implements Transport: every pool connection dies, failing any
// in-flight calls.
func (t *TCPTransport) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	slots := append([]*muxConn(nil), t.slots...)
	t.mu.Unlock()
	for _, c := range slots {
		if c != nil {
			c.fail(errors.New("retrieval: transport closed"))
		}
	}
	return nil
}
