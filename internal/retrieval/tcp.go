package retrieval

import (
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"
)

// nearestRequest and nearestResponse form the wire protocol between the
// coordinator and a TCP data node: length-delimited gob messages over a
// persistent connection.
type nearestRequest struct {
	Feat []float64
	M    int
}

type nearestResponse struct {
	Results []Result
	Err     string
}

// NodeServer serves one shard over TCP.
type NodeServer struct {
	shard *Shard
	ln    net.Listener

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// ServeNode starts serving the shard on addr (use "127.0.0.1:0" for an
// ephemeral port) and returns immediately.
func ServeNode(addr string, shard *Shard) (*NodeServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("retrieval: listen %s: %w", addr, err)
	}
	s := &NodeServer{shard: shard, ln: ln, conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the server's listen address.
func (s *NodeServer) Addr() string { return s.ln.Addr().String() }

func (s *NodeServer) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *NodeServer) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	for {
		var req nearestRequest
		if err := dec.Decode(&req); err != nil {
			return // client hung up or connection torn down
		}
		var resp nearestResponse
		if req.M < 0 {
			resp.Err = fmt.Sprintf("negative m %d", req.M)
		} else {
			resp.Results = s.shard.Nearest(req.Feat, req.M)
		}
		if err := enc.Encode(&resp); err != nil {
			return
		}
	}
}

// Close stops accepting, tears down open connections, and waits for the
// handlers to finish.
func (s *NodeServer) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

// TCPTransport is the coordinator-side client for a TCP data node. It is
// safe for concurrent use; calls are serialized over one connection.
type TCPTransport struct {
	mu     sync.Mutex
	conn   net.Conn
	enc    *gob.Encoder
	dec    *gob.Decoder
	closed bool
}

var _ Transport = (*TCPTransport)(nil)

// DialNode connects to a NodeServer.
func DialNode(addr string) (*TCPTransport, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("retrieval: dial %s: %w", addr, err)
	}
	return &TCPTransport{conn: conn, enc: gob.NewEncoder(conn), dec: gob.NewDecoder(conn)}, nil
}

// Nearest implements Transport.
func (t *TCPTransport) Nearest(feat []float64, m int) ([]Result, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil, errors.New("retrieval: transport closed")
	}
	if err := t.enc.Encode(&nearestRequest{Feat: feat, M: m}); err != nil {
		return nil, fmt.Errorf("retrieval: send: %w", err)
	}
	var resp nearestResponse
	if err := t.dec.Decode(&resp); err != nil {
		return nil, fmt.Errorf("retrieval: recv: %w", err)
	}
	if resp.Err != "" {
		return nil, fmt.Errorf("retrieval: node error: %s", resp.Err)
	}
	return resp.Results, nil
}

// Close implements Transport.
func (t *TCPTransport) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil
	}
	t.closed = true
	return t.conn.Close()
}
