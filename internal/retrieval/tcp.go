package retrieval

import (
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"duo/internal/trace"
)

// Default wire-protocol deadlines. Queries embed on the client and scan an
// in-memory shard on the node, so seconds are already generous; the idle
// timeout only bounds how long a node keeps a silent connection around.
const (
	// DefaultCallTimeout bounds one client-side request/response exchange.
	DefaultCallTimeout = 10 * time.Second
	// DefaultIdleTimeout is how long a node waits for the next request on
	// a persistent connection before dropping it.
	DefaultIdleTimeout = 2 * time.Minute
	// DefaultWriteTimeout bounds writing one response on the node.
	DefaultWriteTimeout = 30 * time.Second
)

// nearestRequest and nearestResponse form the wire protocol between the
// coordinator and a TCP data node: length-delimited gob messages over a
// persistent connection.
//
// TC carries the coordinator's span context so node-side spans parent
// correctly across the process boundary. It is a pointer precisely
// because gob omits nil pointer fields from the encoded value: an
// untraced request is byte-identical to the pre-trace protocol, and a
// gob decoder ignores wire fields its local struct lacks, so an old
// server simply drops the context (wire_test.go pins both directions).
type nearestRequest struct {
	Feat []float64
	M    int
	TC   *trace.Context
}

type nearestResponse struct {
	Results []Result
	Err     string
}

// NodeServerConfig parameterizes a NodeServer's deadlines. The zero value
// selects the package defaults; negative values disable the deadline.
type NodeServerConfig struct {
	// IdleTimeout is the per-request read deadline: the maximum wait for
	// the next complete request on a connection.
	IdleTimeout time.Duration
	// WriteTimeout is the per-response write deadline.
	WriteTimeout time.Duration
	// Trace, when non-nil, records one node.serve span per request. A
	// request carrying a coordinator span context parents the span
	// remotely under it (stitched back together by duotrace).
	Trace *trace.Tracer
}

func (c *NodeServerConfig) applyDefaults() {
	if c.IdleTimeout == 0 {
		c.IdleTimeout = DefaultIdleTimeout
	}
	if c.WriteTimeout == 0 {
		c.WriteTimeout = DefaultWriteTimeout
	}
}

// NodeServer serves one shard over TCP.
type NodeServer struct {
	shard *Shard
	ln    net.Listener
	cfg   NodeServerConfig

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// ServeNode starts serving the shard on addr (use "127.0.0.1:0" for an
// ephemeral port) with default deadlines and returns immediately.
func ServeNode(addr string, shard *Shard) (*NodeServer, error) {
	return ServeNodeConfig(addr, shard, NodeServerConfig{})
}

// ServeNodeConfig is ServeNode with explicit deadline configuration.
func ServeNodeConfig(addr string, shard *Shard, cfg NodeServerConfig) (*NodeServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("retrieval: listen %s: %w", addr, err)
	}
	cfg.applyDefaults()
	s := &NodeServer{shard: shard, ln: ln, cfg: cfg, conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the server's listen address.
func (s *NodeServer) Addr() string { return s.ln.Addr().String() }

func (s *NodeServer) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *NodeServer) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	for {
		if s.cfg.IdleTimeout > 0 {
			conn.SetReadDeadline(time.Now().Add(s.cfg.IdleTimeout)) //duolint:allow walltime socket deadlines are wall-clock by definition; no result bit depends on them
		}
		var req nearestRequest
		if err := dec.Decode(&req); err != nil {
			return // client hung up, idled out, or connection torn down
		}
		var tc trace.Context
		if req.TC != nil {
			tc = *req.TC
		}
		sp := s.cfg.Trace.StartCtx(tc, "node.serve")
		sp.SetInt("m", int64(req.M))
		var resp nearestResponse
		if req.M < 0 {
			resp.Err = fmt.Sprintf("negative m %d", req.M)
		} else {
			resp.Results = s.shard.Nearest(req.Feat, req.M)
		}
		sp.SetInt("results", int64(len(resp.Results)))
		if resp.Err != "" {
			sp.SetStr("error", resp.Err)
		}
		sp.End()
		if s.cfg.WriteTimeout > 0 {
			conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout)) //duolint:allow walltime socket deadlines are wall-clock by definition; no result bit depends on them
		}
		if err := enc.Encode(&resp); err != nil {
			return
		}
	}
}

// Close stops accepting, tears down open connections, and waits for the
// handlers to finish.
func (s *NodeServer) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

// TCPTransport is the coordinator-side client for a TCP data node. It is
// safe for concurrent use; calls are serialized over one connection.
//
// Every call runs under a deadline, and any transport-level error (timeout,
// broken pipe, decode failure) discards the connection: gob streams are
// stateful, so a half-read response would desync every later message. The
// next call transparently redials with fresh encoder/decoder state instead
// of poisoning the session.
type TCPTransport struct {
	addr    string
	timeout time.Duration

	mu         sync.Mutex
	conn       net.Conn
	enc        *gob.Encoder
	dec        *gob.Decoder
	closed     bool
	reconnects int64
}

var _ Transport = (*TCPTransport)(nil)

// DialNode connects to a NodeServer with the default per-call deadline.
func DialNode(addr string) (*TCPTransport, error) {
	return DialNodeTimeout(addr, DefaultCallTimeout)
}

// DialNodeTimeout connects to a NodeServer with an explicit per-call
// deadline covering dial, send, and receive (≤ 0 disables deadlines).
func DialNodeTimeout(addr string, timeout time.Duration) (*TCPTransport, error) {
	t := &TCPTransport{addr: addr, timeout: timeout}
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.redialLocked(); err != nil {
		return nil, err
	}
	return t, nil
}

// Reconnects returns how many times the transport re-established its
// connection after a transport error.
func (t *TCPTransport) Reconnects() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.reconnects
}

// redialLocked (re)establishes the connection and resets codec state.
func (t *TCPTransport) redialLocked() error {
	conn, err := net.DialTimeout("tcp", t.addr, t.dialTimeout())
	if err != nil {
		return fmt.Errorf("retrieval: dial %s: %w", t.addr, err)
	}
	t.conn = conn
	t.enc = gob.NewEncoder(conn)
	t.dec = gob.NewDecoder(conn)
	return nil
}

func (t *TCPTransport) dialTimeout() time.Duration {
	if t.timeout > 0 {
		return t.timeout
	}
	return DefaultCallTimeout
}

// breakLocked discards a desynced or dead connection so the next call
// redials instead of reusing poisoned codec state.
func (t *TCPTransport) breakLocked() {
	if t.conn != nil {
		t.conn.Close()
	}
	t.conn, t.enc, t.dec = nil, nil, nil
}

// Nearest implements Transport.
func (t *TCPTransport) Nearest(feat []float64, m int) ([]Result, error) {
	return t.NearestTraced(trace.Context{}, feat, m)
}

// NearestTraced implements TracedTransport: the span context rides the
// request's optional TC field, so a traced node server parents its
// node.serve span under the coordinator's node span. A zero context adds
// nothing to the encoded request.
func (t *TCPTransport) NearestTraced(tc trace.Context, feat []float64, m int) ([]Result, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil, errors.New("retrieval: transport closed")
	}
	if t.conn == nil {
		if err := t.redialLocked(); err != nil {
			return nil, err
		}
		t.reconnects++
	}
	if t.timeout > 0 {
		t.conn.SetDeadline(time.Now().Add(t.timeout)) //duolint:allow walltime socket deadlines are wall-clock by definition; no result bit depends on them
	}
	req := nearestRequest{Feat: feat, M: m}
	if tc.Valid() {
		req.TC = &tc
	}
	if err := t.enc.Encode(&req); err != nil {
		t.breakLocked()
		return nil, fmt.Errorf("retrieval: send: %w", err)
	}
	var resp nearestResponse
	if err := t.dec.Decode(&resp); err != nil {
		t.breakLocked()
		return nil, fmt.Errorf("retrieval: recv: %w", err)
	}
	if t.timeout > 0 {
		t.conn.SetDeadline(time.Time{})
	}
	if resp.Err != "" {
		// A node-side application error arrives as a complete, well-framed
		// response: the stream is still in sync, keep the connection.
		return nil, fmt.Errorf("retrieval: node error: %s", resp.Err)
	}
	return resp.Results, nil
}

// Close implements Transport.
func (t *TCPTransport) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil
	}
	t.closed = true
	if t.conn == nil {
		return nil
	}
	return t.conn.Close()
}
