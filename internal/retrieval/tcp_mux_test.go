package retrieval

// Integration tests for the multiplexed TCP transport and the admission-
// gated node server: concurrent in-flight dispatch over a pooled client,
// cross-version interop against an in-test legacy (pre-mux) server, and
// ErrOverloaded crossing the wire as a typed, connection-preserving error.

import (
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"duo/internal/models"
)

func TestTCPTransportConcurrentMultiplexedCalls(t *testing.T) {
	m, c := chaosSystem(t)
	shard := NewShard(m, c.Train)
	srv, err := ServeNode("127.0.0.1:0", shard)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	tr, err := DialNodeConfig(srv.Addr(), TCPConfig{Timeout: 10 * time.Second, Conns: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	// Distinct queries per worker, so a mismatched (misrouted) response is
	// detectable: every reply must equal the shard's direct answer for THE
	// SAME query — out-of-order delivery with ID matching guarantees it.
	queries := make([][]float64, len(c.Test))
	want := make([][]Result, len(c.Test))
	for i, v := range c.Test {
		queries[i] = models.Embed(m, v).Data()
		want[i] = shard.Nearest(queries[i], 4)
	}

	const workers, rounds = 8, 20
	errs := make(chan error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				qi := (w + r) % len(queries)
				rs, err := tr.Nearest(queries[qi], 4)
				if err != nil {
					errs <- fmt.Errorf("worker %d round %d: %w", w, r, err)
					return
				}
				if !reflect.DeepEqual(rs, want[qi]) {
					errs <- fmt.Errorf("worker %d round %d: response for query %d mismatched (misrouted reply?)", w, r, qi)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if tr.Reconnects() != 0 {
		t.Errorf("reconnects = %d, want 0 under healthy concurrent load", tr.Reconnects())
	}
}

func TestTCPServerShedsOverloadAcrossWire(t *testing.T) {
	m, c := chaosSystem(t)
	shard := NewShard(m, c.Train)
	srv, err := ServeNodeConfig("127.0.0.1:0", shard, NodeServerConfig{
		Admission: AdmissionConfig{MaxInFlight: 1, MaxQueue: 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	tr, err := DialNodeConfig(srv.Addr(), TCPConfig{Timeout: 10 * time.Second, Conns: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	feat := models.Embed(m, c.Test[0]).Data()

	// Hammer a 1-slot server from 8 workers until a shed is observed (in
	// practice the very first concurrent burst sheds), then drain.
	var served, shed, unexpected atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_, err := tr.Nearest(feat, 4)
				switch {
				case err == nil:
					served.Add(1)
				case errors.Is(err, ErrOverloaded):
					shed.Add(1)
				default:
					unexpected.Add(1)
					return
				}
			}
		}()
	}
	deadline := time.Now().Add(10 * time.Second)                                    //duolint:allow walltime test watchdog bound on a load generator; never limits the pass path
	for shed.Load() == 0 && time.Now().Before(deadline) && unexpected.Load() == 0 { //duolint:allow walltime test watchdog bound on a load generator; never limits the pass path
		time.Sleep(time.Millisecond) //duolint:allow walltime polling cadence of the test watchdog only
	}
	close(stop)
	wg.Wait()

	if n := unexpected.Load(); n != 0 {
		t.Fatalf("%d calls failed with a non-overload error", n)
	}
	if shed.Load() == 0 {
		t.Fatal("1-slot server never shed under 8-way concurrent load")
	}
	st := srv.AdmissionStats()
	if st.Sheds != shed.Load() {
		t.Errorf("server sheds = %d, client observed %d", st.Sheds, shed.Load())
	}
	if st.Admitted != served.Load() {
		t.Errorf("server admitted = %d, client served %d", st.Admitted, served.Load())
	}
	if st.HighWater > 1 {
		t.Errorf("in-flight high-water = %d, want ≤ 1 (MaxInFlight)", st.HighWater)
	}
	// Sheds are well-framed responses: the pool must not have burned a
	// single connection on them, and the node must still serve.
	if tr.Reconnects() != 0 {
		t.Errorf("reconnects = %d, want 0 — sheds must keep the connection", tr.Reconnects())
	}
	if _, err := tr.Nearest(feat, 4); err != nil {
		t.Errorf("call after load drained: %v", err)
	}
}

// legacyNodeServer is an in-test pre-multiplexing node: it speaks the old
// wire structs (no ID, no Overloaded), serializes strictly per connection,
// and answers with a payload derived from the request so the client's
// FIFO matching is verifiable per call.
func legacyNodeServer(t *testing.T) (addr string, stop func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			wg.Add(1)
			go func(conn net.Conn) {
				defer wg.Done()
				defer conn.Close()
				dec := gob.NewDecoder(conn)
				enc := gob.NewEncoder(conn)
				for {
					var req legacyNearestRequest
					if err := dec.Decode(&req); err != nil {
						return
					}
					resp := legacyNearestResponse{Results: []Result{
						{ID: fmt.Sprintf("echo-m%d", req.M), Label: req.M, Dist: float64(req.M)},
					}}
					if err := enc.Encode(&resp); err != nil {
						return
					}
				}
			}(conn)
		}
	}()
	return ln.Addr().String(), func() { ln.Close(); wg.Wait() }
}

func TestNewClientAgainstLegacyServer(t *testing.T) {
	addr, stop := legacyNodeServer(t)
	defer stop()
	tr, err := DialNode(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	// Sequential calls: unnumbered replies FIFO-match trivially.
	for _, m := range []int{2, 5, 9} {
		rs, err := tr.Nearest([]float64{1}, m)
		if err != nil {
			t.Fatalf("m=%d: %v", m, err)
		}
		if len(rs) != 1 || rs[0].Label != m {
			t.Fatalf("m=%d got %+v, want the echo for this call", m, rs)
		}
	}

	// Concurrent calls over the single legacy connection: the server
	// serializes, so unnumbered replies arrive in request order and the
	// FIFO fallback must route each to its own caller.
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(m int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				rs, err := tr.Nearest([]float64{1}, m)
				if err != nil {
					errs <- err
					return
				}
				if len(rs) != 1 || rs[0].Label != m {
					errs <- fmt.Errorf("caller m=%d received echo for m=%d: FIFO matching misrouted", m, rs[0].Label)
					return
				}
			}
		}(10 + w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if tr.Reconnects() != 0 {
		t.Errorf("reconnects = %d, want 0 against a healthy legacy server", tr.Reconnects())
	}
}
