package retrieval

import (
	"slices"
	"strings"
	"sync"

	"duo/internal/parallel"
	"duo/internal/tensor"
)

// This file is the sharded top-m distance scan shared by Engine, IVFEngine,
// and Shard. The gallery is split into contiguous shards (parallel.Bounds),
// each shard keeps its own bounded top-m heap, and the per-shard winners
// are merged under the global (Dist, ID) order. Every per-item distance is
// computed independently and the merge order is a total order over unique
// IDs, so the output is bitwise-identical to the sequential sort-everything
// path (`nearest`) at every worker count — the determinism contract of
// DESIGN.md §9.
//
// The scan kernels are //duolint:hot: nothing on the per-row path may
// allocate. The single-worker path is fully sequential (no parallel.ForN
// closure, whose escape to goroutines costs one heap allocation per scan),
// sorting uses slices.SortFunc (allocation-free, unlike sort.Slice which
// boxes both the slice and the comparator), and callers that own a result
// buffer use scanTopMInto to amortize the output slice.

// resultLess is the service-wide result order: ascending distance with ID
// tie-breaking. It is a strict total order whenever gallery IDs are unique,
// which is what makes the sharded scan reproduce `nearest` exactly.
func resultLess(a, b Result) bool {
	if a.Dist != b.Dist { //duolint:allow floateq comparator tie-break: exact equality IS the tie, and both operands are the same unrounded computation
		return a.Dist < b.Dist
	}
	return a.ID < b.ID
}

// cmpResult is resultLess as a three-way comparison for slices.SortFunc.
// Sorting under it is bitwise-identical to sorting under resultLess: the
// order is strictly total over unique IDs, so the sorted sequence is
// unique regardless of the algorithm.
func cmpResult(a, b Result) int {
	if a.Dist != b.Dist { //duolint:allow floateq comparator tie-break: exact equality IS the tie, and both operands are the same unrounded computation
		if a.Dist < b.Dist {
			return -1
		}
		return 1
	}
	return strings.Compare(a.ID, b.ID)
}

// scanScratch is the reusable per-query state of a sharded scan: one
// bounded heap per shard plus a merge buffer. Engines keep these in a
// sync.Pool so a steady-state query allocates only the caller-owned result
// slice, never an O(gallery) temporary.
type scanScratch struct {
	heaps  [][]Result
	merged []Result
}

// shards returns w heap slots, each empty with capacity ≥ m, reusing the
// scratch's backing arrays.
func (sc *scanScratch) shards(w, m int) [][]Result {
	if cap(sc.heaps) < w {
		sc.heaps = make([][]Result, w)
	}
	sc.heaps = sc.heaps[:w]
	for s := range sc.heaps {
		if cap(sc.heaps[s]) < m {
			sc.heaps[s] = make([]Result, 0, m)
		} else {
			sc.heaps[s] = sc.heaps[s][:0]
		}
	}
	return sc.heaps
}

// getScratch fetches a scratch from the pool (a zero-value pool works: a
// nil Get is replaced with a fresh scratch).
func getScratch(pool *sync.Pool) *scanScratch {
	sc, _ := pool.Get().(*scanScratch)
	if sc == nil {
		sc = new(scanScratch)
	}
	return sc
}

// pushBounded inserts r into the bounded max-heap h (worst kept entry at
// the root), retaining the m smallest entries under less. It is the shared
// selection kernel of the sharded scans: the exact/IVF scans instantiate it
// with Result+resultLess, the PQ code scan with row-index candidates.
//
//duolint:hot
func pushBounded[T any](h []T, r T, m int, less func(a, b T) bool) []T {
	if len(h) < m {
		h = append(h, r)
		i := len(h) - 1
		for i > 0 {
			p := (i - 1) / 2
			if !less(h[p], h[i]) {
				break
			}
			h[p], h[i] = h[i], h[p]
			i = p
		}
		return h
	}
	if !less(r, h[0]) {
		return h
	}
	h[0] = r
	i := 0
	for {
		l, rr := 2*i+1, 2*i+2
		big := i
		if l < len(h) && less(h[big], h[l]) {
			big = l
		}
		if rr < len(h) && less(h[big], h[rr]) {
			big = rr
		}
		if big == i {
			return h
		}
		h[i], h[big] = h[big], h[i]
		i = big
	}
}

// pushTopM inserts r into the bounded max-heap h, retaining the m smallest
// entries under resultLess.
//
//duolint:hot
func pushTopM(h []Result, r Result, m int) []Result {
	return pushBounded(h, r, m, resultLess)
}

// scanTopM scores feat against the index and returns the global top-m in
// resultLess order, scanning with w shards. The result equals
// nearest(feat, ids, labels, feats, m) bitwise for any w ≥ 1 (unique IDs
// assumed, as everywhere in the service). sc may be nil; passing a pooled
// scratch makes the scan allocation-free apart from the returned slice.
func scanTopM(feat *tensor.Tensor, ids []string, labels []int, feats []*tensor.Tensor, m, w int, sc *scanScratch) []Result {
	return scanTopMInto(nil, feat, ids, labels, feats, m, w, sc)
}

// scanTopMInto is scanTopM writing into dst (grown only when its capacity
// is short): with a pooled scratch and a warm dst, a steady-state
// single-worker scan performs zero heap allocations.
//
//duolint:hot
func scanTopMInto(dst []Result, feat *tensor.Tensor, ids []string, labels []int, feats []*tensor.Tensor, m, w int, sc *scanScratch) []Result {
	n := len(ids)
	if m > n {
		m = n
	}
	if m < 0 {
		m = 0
	}
	if cap(dst) < m || dst == nil {
		dst = make([]Result, m) // non-nil even for m == 0, like the scan always returned
	}
	dst = dst[:m]
	if m == 0 {
		return dst
	}
	if sc == nil {
		sc = new(scanScratch)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	heaps := sc.shards(w, m)
	if w == 1 {
		// Sequential fast path: the parallel.ForN body escapes to worker
		// goroutines and therefore heap-allocates its closure; a plain loop
		// does not.
		h := heaps[0]
		for i := 0; i < n; i++ {
			h = pushTopM(h, Result{ID: ids[i], Label: labels[i], Dist: feat.Distance(feats[i])}, m)
		}
		heaps[0] = h
	} else {
		parallel.ForN(w, n, func(shard, start, end int) {
			h := heaps[shard]
			for i := start; i < end; i++ {
				h = pushTopM(h, Result{ID: ids[i], Label: labels[i], Dist: feat.Distance(feats[i])}, m)
			}
			heaps[shard] = h
		})
	}
	merged := sc.merged[:0]
	for _, h := range heaps {
		merged = append(merged, h...)
	}
	slices.SortFunc(merged, cmpResult)
	sc.merged = merged
	copy(dst, merged[:m])
	return dst
}

// scored is a candidate row with its (approximate) distance — the unit the
// PQ code scan selects before exact re-ranking. Ordering is (dist, ID of
// the row), the same strict total order resultLess imposes on Results, so
// the selected candidate set is identical at every worker count.
type scored struct {
	row  int
	dist float64
}

// idxScratch is the reusable workspace of a sharded row-index scan (the
// scored analogue of scanScratch).
type idxScratch struct {
	heaps  [][]scored
	merged []scored
}

func (sc *idxScratch) shards(w, m int) [][]scored {
	if cap(sc.heaps) < w {
		sc.heaps = make([][]scored, w)
	}
	sc.heaps = sc.heaps[:w]
	for s := range sc.heaps {
		if cap(sc.heaps[s]) < m {
			sc.heaps[s] = make([]scored, 0, m)
		} else {
			sc.heaps[s] = sc.heaps[s][:0]
		}
	}
	return sc.heaps
}

// scanTopMIdx returns the m rows of [0, n) with the smallest dist(i) in
// (dist, ids[row]) order, scanning with w contiguous shards. Like scanTopM
// it is bitwise-deterministic for any w ≥ 1 given unique ids: every dist(i)
// is computed independently and the merge order is a strict total order.
// The returned slice aliases sc.merged and is valid until the next scan
// with the same scratch.
//
// dist escapes into worker goroutines on the multi-shard path, so a
// closure passed here may be heap-allocated by the caller; allocation-free
// callers keep a reusable closure alongside their scratch (see pqScratch).
// Each branch below builds its own comparator literal on purpose: the
// single-worker one never escapes and stays on the stack, while a shared
// variable reused by the parallel branch would be forced to the heap on
// every call.
//
//duolint:hot
func scanTopMIdx(n, m, w int, dist func(i int) float64, ids []string, sc *idxScratch) []scored {
	if m > n {
		m = n
	}
	if m <= 0 {
		return nil
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	heaps := sc.shards(w, m)
	if w == 1 {
		less := func(a, b scored) bool {
			if a.dist != b.dist { //duolint:allow floateq comparator tie-break: exact equality IS the tie, and both operands are the same unrounded computation
				return a.dist < b.dist
			}
			return ids[a.row] < ids[b.row]
		}
		h := heaps[0]
		for i := 0; i < n; i++ {
			h = pushBounded(h, scored{row: i, dist: dist(i)}, m, less)
		}
		heaps[0] = h
	} else {
		less := func(a, b scored) bool {
			if a.dist != b.dist { //duolint:allow floateq comparator tie-break: exact equality IS the tie, and both operands are the same unrounded computation
				return a.dist < b.dist
			}
			return ids[a.row] < ids[b.row]
		}
		parallel.ForN(w, n, func(shard, start, end int) {
			h := heaps[shard]
			for i := start; i < end; i++ {
				h = pushBounded(h, scored{row: i, dist: dist(i)}, m, less)
			}
			heaps[shard] = h
		})
	}
	merged := sc.merged[:0]
	for _, h := range heaps {
		merged = append(merged, h...)
	}
	slices.SortFunc(merged, func(a, b scored) int {
		if a.dist != b.dist { //duolint:allow floateq comparator tie-break: exact equality IS the tie, and both operands are the same unrounded computation
			if a.dist < b.dist {
				return -1
			}
			return 1
		}
		return strings.Compare(ids[a.row], ids[b.row])
	})
	sc.merged = merged
	return merged[:m]
}
