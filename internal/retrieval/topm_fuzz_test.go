package retrieval

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"duo/internal/tensor"
)

// FuzzScanTopM cross-checks the sharded top-m scan against the naive
// sort-everything oracle (`nearest`) over random gallery sizes, heavily
// duplicated distances, out-of-range m, and several worker counts. Any
// bitwise divergence — order, ties, labels — is a determinism-contract
// violation.
func FuzzScanTopM(f *testing.F) {
	f.Add(int64(1), uint8(10), int8(3))
	f.Add(int64(2), uint8(0), int8(5))
	f.Add(int64(3), uint8(1), int8(-2))
	f.Add(int64(4), uint8(50), int8(100)) // m far larger than gallery
	f.Add(int64(5), uint8(7), int8(7))

	f.Fuzz(func(t *testing.T, seed int64, nRaw uint8, mRaw int8) {
		n := int(nRaw) % 64
		m := int(mRaw)
		rng := rand.New(rand.NewSource(seed))

		ids := make([]string, n)
		labels := make([]int, n)
		feats := make([]*tensor.Tensor, n)
		for i := 0; i < n; i++ {
			// Unique IDs (the service-wide invariant), coarse feature values
			// so duplicate distances are the common case, not the edge case.
			ids[i] = fmt.Sprintf("v%03d", i)
			labels[i] = rng.Intn(4)
			feats[i] = tensor.From([]float64{float64(rng.Intn(4)), float64(rng.Intn(2))}, 2)
		}
		query := tensor.From([]float64{float64(rng.Intn(4)), 0}, 2)

		want := nearest(query, ids, labels, feats, m)
		for _, w := range []int{1, 2, 3, 7} {
			got := scanTopM(query, ids, labels, feats, m, w, nil)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("seed=%d n=%d m=%d workers=%d:\n got %v\nwant %v", seed, n, m, w, got, want)
			}
			// The pooled-scratch path must agree with the fresh-scratch path.
			sc := new(scanScratch)
			again := scanTopM(query, ids, labels, feats, m, w, sc)
			reused := scanTopM(query, ids, labels, feats, m, w, sc)
			if !reflect.DeepEqual(again, want) || !reflect.DeepEqual(reused, want) {
				t.Fatalf("seed=%d n=%d m=%d workers=%d: scratch reuse diverged", seed, n, m, w)
			}
		}
	})
}
