package retrieval

import (
	"bytes"
	"errors"
	"sync"
	"testing"

	"time"

	"duo/internal/trace"
)

// tracedStub records the span context it was called with; it stands in
// for a TCPTransport when testing decorator forwarding.
type tracedStub struct {
	stubTransport
	mu2 sync.Mutex
	tcs []trace.Context
}

func (s *tracedStub) NearestTraced(tc trace.Context, feat []float64, m int) ([]Result, error) {
	s.mu2.Lock()
	s.tcs = append(s.tcs, tc)
	s.mu2.Unlock()
	return s.Nearest(feat, m)
}

func (s *tracedStub) contexts() []trace.Context {
	s.mu2.Lock()
	defer s.mu2.Unlock()
	return append([]trace.Context(nil), s.tcs...)
}

func clusterTraceRun(t *testing.T) []trace.Record {
	t.Helper()
	m, c := chaosSystem(t)
	cl := NewLocalCluster(m, c.Train, 3)
	defer cl.Close()
	tr := trace.New("cluster-test")
	cl.SetTrace(tr)
	root := tr.Start(nil, "retrieve")
	if _, err := cl.RetrieveTraced(root.Ctx(), c.Test[0], 4); err != nil {
		t.Fatal(err)
	}
	root.End()
	return tr.Records()
}

func TestClusterRecordsNodeSpans(t *testing.T) {
	recs := clusterTraceRun(t)
	if len(recs) != 4 { // root + one span per node
		t.Fatalf("got %d spans, want 4: %+v", len(recs), recs)
	}
	var rootID uint64
	for _, r := range recs {
		if r.Name == "retrieve" {
			rootID = r.ID
		}
	}
	nodeIdx := 0
	for _, r := range recs {
		if r.Name != "node" {
			continue
		}
		if r.Parent != rootID {
			t.Errorf("node span parent = %d, want %d", r.Parent, rootID)
		}
		if idx, ok := r.Int("node"); !ok || idx != int64(nodeIdx) {
			t.Errorf("node index attr = %d (%v), want %d", idx, ok, nodeIdx)
		}
		if out, _ := r.Str("outcome"); out != "ok" {
			t.Errorf("node %d outcome = %q, want ok", nodeIdx, out)
		}
		if n, ok := r.Int("results"); !ok || n <= 0 {
			t.Errorf("node %d results attr = %d (%v)", nodeIdx, n, ok)
		}
		nodeIdx++
	}
	if nodeIdx != 3 {
		t.Errorf("found %d node spans, want 3", nodeIdx)
	}
}

func TestClusterNodeSpansAreDeterministic(t *testing.T) {
	render := func(recs []trace.Record) []byte {
		var buf bytes.Buffer
		if err := trace.WriteRecords(&buf, recs); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a := render(clusterTraceRun(t))
	b := render(clusterTraceRun(t))
	if !bytes.Equal(a, b) {
		t.Fatalf("cluster trace not reproducible:\n%s\nvs\n%s", a, b)
	}
}

func TestClusterUntracedCallRecordsNothing(t *testing.T) {
	m, c := chaosSystem(t)
	cl := NewLocalCluster(m, c.Train, 2)
	defer cl.Close()
	tr := trace.New("idle")
	cl.SetTrace(tr)
	if _, err := cl.RetrieveErr(c.Test[0], 4); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 0 {
		t.Errorf("untraced RetrieveErr recorded %d spans, want 0", tr.Len())
	}
}

func TestClusterNodeSpanOutcomes(t *testing.T) {
	m, c := chaosSystem(t)
	nodes := []Transport{
		&stubTransport{rs: stubResults(4)},
		&stubTransport{err: errors.New("node down")},
		&stubTransport{err: ErrBreakerOpen},
	}
	cl := NewCluster(m, nodes)
	defer cl.Close()
	tr := trace.New("outcomes")
	cl.SetTrace(tr)
	root := tr.Start(nil, "retrieve")
	if _, err := cl.RetrieveTraced(root.Ctx(), c.Test[0], 2); err == nil {
		t.Fatal("want a node error under best-effort")
	}
	root.End()
	want := []string{"ok", "error", "fastfail"}
	got := map[int64]string{}
	for _, r := range tr.Records() {
		if r.Name != "node" {
			continue
		}
		idx, _ := r.Int("node")
		got[idx], _ = r.Str("outcome")
	}
	for i, w := range want {
		if got[int64(i)] != w {
			t.Errorf("node %d outcome = %q, want %q", i, got[int64(i)], w)
		}
	}
}

func TestTCPNodeServerParentsSpanRemotely(t *testing.T) {
	m, c := chaosSystem(t)
	nodeTr := trace.New("node-a")
	srv, err := ServeNodeConfig("127.0.0.1:0", NewShard(m, c.Train), NodeServerConfig{Trace: nodeTr})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	tp, err := DialNode(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer tp.Close()

	coord := trace.New("coord")
	sp := coord.Start(nil, "node")
	feat := make([]float64, m.FeatureDim())
	feat[0] = 1
	if _, err := tp.NearestTraced(sp.Ctx(), feat, 3); err != nil {
		t.Fatal(err)
	}
	sp.End()
	srv.Close() // flush handlers before reading the node tracer

	recs := nodeTr.Records()
	if len(recs) != 1 || recs[0].Name != "node.serve" {
		t.Fatalf("node tracer recorded %+v, want one node.serve span", recs)
	}
	got := recs[0]
	if got.RemoteTrace != "coord" || got.RemoteSpan != sp.ID() {
		t.Errorf("remote parent = %q/%d, want coord/%d", got.RemoteTrace, got.RemoteSpan, sp.ID())
	}
	if n, ok := got.Int("results"); !ok || n != 3 {
		t.Errorf("results attr = %d (%v), want 3", n, ok)
	}

	// Plain Nearest sends a zero context: the server span is a local root.
	if _, err := tp.Nearest(feat, 2); err == nil {
		recs = nodeTr.Records()
		if len(recs) != 2 || recs[1].RemoteSpan != 0 {
			t.Errorf("untraced call got remote parent: %+v", recs)
		}
	}
}

func TestRetryForwardsTraceContext(t *testing.T) {
	inner := &tracedStub{stubTransport: stubTransport{err: errors.New("flaky")}}
	rt := NewRetryTransport(inner, RetryConfig{MaxAttempts: 3, Sleep: func(time.Duration) {}})
	tc := trace.Context{TraceID: "t", SpanID: 7}
	if _, err := rt.NearestTraced(tc, []float64{1}, 2); err == nil {
		t.Fatal("want error from always-failing stub")
	}
	tcs := inner.contexts()
	if len(tcs) != 3 {
		t.Fatalf("inner saw %d traced attempts, want 3", len(tcs))
	}
	for i, got := range tcs {
		if got != tc {
			t.Errorf("attempt %d context = %+v, want %+v", i, got, tc)
		}
	}
}

func TestBreakerForwardsTraceContextAndRetries(t *testing.T) {
	inner := &tracedStub{stubTransport: stubTransport{err: errors.New("down")}}
	rt := NewRetryTransport(inner, RetryConfig{MaxAttempts: 2, Sleep: func(time.Duration) {}})
	br := NewBreakerTransport(rt, BreakerConfig{FailureThreshold: 100})
	tc := trace.Context{TraceID: "t", SpanID: 3}
	if _, err := br.NearestTraced(tc, []float64{1}, 2); err == nil {
		t.Fatal("want error")
	}
	if got := inner.contexts(); len(got) != 2 || got[0] != tc {
		t.Errorf("context did not pass through breaker+retry: %+v", got)
	}
	// The breaker sees through the retry layer's counter.
	if br.Retries() != rt.Retries() || br.Retries() != 1 {
		t.Errorf("breaker Retries() = %d, retry layer = %d, want both 1", br.Retries(), rt.Retries())
	}
}
