package retrieval

// Round-trip tests for every type that crosses a gob boundary: the TCP
// wire protocol (nearestRequest/nearestResponse, including the optional
// trace-context field) and the persisted index format (indexRecord). The
// gobsymmetry analyzer cross-checks that every gob-encoded type is
// exercised here, so a new wire field without a round-trip test fails
// duolint.

import (
	"bytes"
	"encoding/gob"
	"reflect"
	"testing"

	"duo/internal/trace"
)

func gobRoundTrip(t *testing.T, in, out any) {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(in); err != nil {
		t.Fatalf("encode %T: %v", in, err)
	}
	if err := gob.NewDecoder(&buf).Decode(out); err != nil {
		t.Fatalf("decode %T: %v", out, err)
	}
}

func TestNearestRequestRoundTrip(t *testing.T) {
	in := nearestRequest{
		Feat: []float64{0.25, -1, 3.5},
		M:    7,
		TC:   &trace.Context{TraceID: "run-17", SpanID: 42},
	}
	var out nearestRequest
	gobRoundTrip(t, &in, &out)
	if !reflect.DeepEqual(in, out) {
		t.Errorf("round trip mutated request: %+v -> %+v", in, out)
	}
}

func TestNearestResponseRoundTrip(t *testing.T) {
	in := nearestResponse{
		Results: []Result{
			{ID: "v01", Label: 2, Dist: 0.125},
			{ID: "v02", Label: 0, Dist: 1.5},
		},
		Err: "boom",
	}
	var out nearestResponse
	gobRoundTrip(t, &in, &out)
	if !reflect.DeepEqual(in, out) {
		t.Errorf("round trip mutated response: %+v -> %+v", in, out)
	}
}

func TestIndexRecordRoundTrip(t *testing.T) {
	in := indexRecord{
		IDs:    []string{"a", "b"},
		Labels: []int{1, 2},
		Dim:    2,
		Feats:  []float64{0.5, 1, 1.5, 2},
	}
	var out indexRecord
	gobRoundTrip(t, &in, &out)
	if !reflect.DeepEqual(in, out) {
		t.Errorf("round trip mutated index record: %+v -> %+v", in, out)
	}
}

// legacyNearestRequest is the pre-trace wire struct, kept here to pin
// cross-version compatibility of the protocol extension.
type legacyNearestRequest struct {
	Feat []float64
	M    int
}

func TestNearestRequestBackwardCompatible(t *testing.T) {
	// New client -> old server: the unknown TC field is skipped.
	in := nearestRequest{Feat: []float64{1, 2}, M: 3, TC: &trace.Context{TraceID: "t", SpanID: 9}}
	var old legacyNearestRequest
	gobRoundTrip(t, &in, &old)
	if !reflect.DeepEqual(old.Feat, in.Feat) || old.M != in.M {
		t.Errorf("old server decoded %+v from %+v", old, in)
	}

	// Old client -> new server: TC stays zero (no phantom span parent).
	legacy := legacyNearestRequest{Feat: []float64{4, 5}, M: 6}
	var out nearestRequest
	gobRoundTrip(t, &legacy, &out)
	if !reflect.DeepEqual(out.Feat, legacy.Feat) || out.M != legacy.M {
		t.Errorf("new server decoded %+v from %+v", out, legacy)
	}
	if out.TC != nil {
		t.Errorf("legacy request produced a trace context: %+v", out.TC)
	}
}

func TestZeroTraceContextAddsNoPayload(t *testing.T) {
	// gob omits nil pointer fields from the encoded value (the reason TC
	// is *trace.Context, not trace.Context: a zero-valued struct field
	// still costs an empty-struct marker on the wire). An untraced
	// request must therefore encode to the same value bytes as the legacy
	// protocol, and a traced one must be strictly longer. Encode two
	// values per stream so the second message is pure value — no type
	// descriptor; its leading bytes are the message length and type id,
	// which legitimately differ between streams, so compare from byte 3.
	secondMessage := func(v1, v2 any) []byte {
		t.Helper()
		var buf bytes.Buffer
		enc := gob.NewEncoder(&buf)
		if err := enc.Encode(v1); err != nil {
			t.Fatal(err)
		}
		n := buf.Len()
		if err := enc.Encode(v2); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()[n:]
	}
	untraced := secondMessage(
		&nearestRequest{Feat: []float64{9}, M: 1},
		&nearestRequest{Feat: []float64{1, 2}, M: 3},
	)
	legacy := secondMessage(
		&legacyNearestRequest{Feat: []float64{9}, M: 1},
		&legacyNearestRequest{Feat: []float64{1, 2}, M: 3},
	)
	traced := secondMessage(
		&nearestRequest{Feat: []float64{9}, M: 1},
		&nearestRequest{Feat: []float64{1, 2}, M: 3, TC: &trace.Context{TraceID: "run", SpanID: 5}},
	)
	if len(untraced) < 4 || len(legacy) < 4 || !bytes.Equal(untraced[3:], legacy[3:]) {
		t.Errorf("untraced request value bytes differ from legacy protocol:\n% x\nvs\n% x", untraced, legacy)
	}
	if len(traced) <= len(untraced) {
		t.Errorf("traced message (%d bytes) not longer than untraced (%d): TC did not ride the wire", len(traced), len(untraced))
	}
}
