package retrieval

// Round-trip tests for every type that crosses a gob boundary: the TCP
// wire protocol (nearestRequest/nearestResponse, including the optional
// trace-context field) and the persisted index format (indexRecord). The
// gobsymmetry analyzer cross-checks that every gob-encoded type is
// exercised here, so a new wire field without a round-trip test fails
// duolint.

import (
	"bytes"
	"encoding/gob"
	"reflect"
	"testing"

	"duo/internal/telemetry"
	"duo/internal/trace"
)

func gobRoundTrip(t *testing.T, in, out any) {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(in); err != nil {
		t.Fatalf("encode %T: %v", in, err)
	}
	if err := gob.NewDecoder(&buf).Decode(out); err != nil {
		t.Fatalf("decode %T: %v", out, err)
	}
}

func TestNearestRequestRoundTrip(t *testing.T) {
	in := nearestRequest{
		Feat: []float64{0.25, -1, 3.5},
		M:    7,
		TC:   &trace.Context{TraceID: "run-17", SpanID: 42},
		ID:   91,
	}
	var out nearestRequest
	gobRoundTrip(t, &in, &out)
	if !reflect.DeepEqual(in, out) {
		t.Errorf("round trip mutated request: %+v -> %+v", in, out)
	}
}

func TestNearestResponseRoundTrip(t *testing.T) {
	in := nearestResponse{
		Results: []Result{
			{ID: "v01", Label: 2, Dist: 0.125},
			{ID: "v02", Label: 0, Dist: 1.5},
		},
		Err:        "boom",
		ID:         91,
		Overloaded: true,
	}
	var out nearestResponse
	gobRoundTrip(t, &in, &out)
	if !reflect.DeepEqual(in, out) {
		t.Errorf("round trip mutated response: %+v -> %+v", in, out)
	}
}

func TestIndexRecordRoundTrip(t *testing.T) {
	in := indexRecord{
		IDs:    []string{"a", "b"},
		Labels: []int{1, 2},
		Dim:    2,
		Feats:  []float64{0.5, 1, 1.5, 2},
	}
	var out indexRecord
	gobRoundTrip(t, &in, &out)
	if !reflect.DeepEqual(in, out) {
		t.Errorf("round trip mutated index record: %+v -> %+v", in, out)
	}
}

// legacyNearestRequest is the pre-trace wire struct, kept here to pin
// cross-version compatibility of the protocol extensions (trace context,
// then multiplexing IDs).
type legacyNearestRequest struct {
	Feat []float64
	M    int
}

// legacyNearestResponse is the pre-multiplexing response struct (no ID, no
// Overloaded flag), pinning the server-to-old-client direction.
type legacyNearestResponse struct {
	Results []Result
	Err     string
}

func TestNearestRequestBackwardCompatible(t *testing.T) {
	// New client -> old server: the unknown TC and ID fields are skipped,
	// so a multiplexed frame still decodes on a pre-mux node.
	in := nearestRequest{Feat: []float64{1, 2}, M: 3, TC: &trace.Context{TraceID: "t", SpanID: 9}, ID: 7}
	var old legacyNearestRequest
	gobRoundTrip(t, &in, &old)
	if !reflect.DeepEqual(old.Feat, in.Feat) || old.M != in.M {
		t.Errorf("old server decoded %+v from %+v", old, in)
	}

	// Old client -> new server: TC stays zero (no phantom span parent) and
	// ID stays 0 (which routes the server onto the serialized legacy path).
	legacy := legacyNearestRequest{Feat: []float64{4, 5}, M: 6}
	var out nearestRequest
	gobRoundTrip(t, &legacy, &out)
	if !reflect.DeepEqual(out.Feat, legacy.Feat) || out.M != legacy.M {
		t.Errorf("new server decoded %+v from %+v", out, legacy)
	}
	if out.TC != nil {
		t.Errorf("legacy request produced a trace context: %+v", out.TC)
	}
	if out.ID != 0 {
		t.Errorf("legacy request produced a mux ID: %d", out.ID)
	}
}

func TestNearestResponseBackwardCompatible(t *testing.T) {
	// New server -> old client: ID and Overloaded are skipped; a shed still
	// surfaces as an ordinary node error through the Err text.
	in := shedResponse(42)
	var old legacyNearestResponse
	gobRoundTrip(t, &in, &old)
	if old.Err == "" {
		t.Error("old client saw no error text on a shed response")
	}

	// Old server -> new client: no ID on the wire, so the response decodes
	// with ID 0 (FIFO-matched) and Overloaded false.
	legacy := legacyNearestResponse{Results: []Result{{ID: "v01", Label: 1, Dist: 0.5}}, Err: ""}
	var out nearestResponse
	gobRoundTrip(t, &legacy, &out)
	if !reflect.DeepEqual(out.Results, legacy.Results) {
		t.Errorf("new client decoded %+v from %+v", out, legacy)
	}
	if out.ID != 0 || out.Overloaded {
		t.Errorf("legacy response produced mux fields: %+v", out)
	}
}

func TestStatsProbeRoundTrip(t *testing.T) {
	inReq := nearestRequest{ID: 4, Stats: &statsRequest{Rings: true}}
	var outReq nearestRequest
	gobRoundTrip(t, &inReq, &outReq)
	if !reflect.DeepEqual(inReq, outReq) {
		t.Errorf("round trip mutated stats request: %+v -> %+v", inReq, outReq)
	}

	inResp := nearestResponse{ID: 4, Stats: &statsResponse{
		Snapshot: &telemetry.Snapshot{
			Counters: map[string]int64{"shard.queries": 12},
			Histograms: map[string]telemetry.HistogramStats{
				"shard.scan_ns": {
					Count: 3, Sum: 600, Min: 100, Max: 300,
					Mean: 200, P50: 200, P95: 300, P99: 300,
					Bounds:  []float64{100, 1000},
					Buckets: []int64{1, 2, 0},
				},
			},
		},
		Size: 128,
		Addr: "127.0.0.1:9999",
	}}
	var outResp nearestResponse
	gobRoundTrip(t, &inResp, &outResp)
	if !reflect.DeepEqual(inResp, outResp) {
		t.Errorf("round trip mutated stats response:\n%+v\n->\n%+v", inResp, outResp)
	}
}

func TestStatsFieldsBackwardCompatible(t *testing.T) {
	// New coordinator -> old server: the unknown Stats field is skipped,
	// so the probe decodes as an empty scan (nil Feat, M 0) that the old
	// node answers harmlessly — which is how the client detects
	// ErrStatsUnsupported (no Stats payload comes back).
	in := nearestRequest{ID: 3, Stats: &statsRequest{Rings: true}}
	var old legacyNearestRequest
	gobRoundTrip(t, &in, &old)
	if old.Feat != nil || old.M != 0 {
		t.Errorf("old server decoded a stats probe as a real scan: %+v", old)
	}

	// Old server -> new coordinator: no Stats field on the wire, so the
	// response decodes with Stats nil.
	legacy := legacyNearestResponse{Results: []Result{{ID: "v01", Label: 1, Dist: 0.5}}}
	var out nearestResponse
	gobRoundTrip(t, &legacy, &out)
	if out.Stats != nil {
		t.Errorf("legacy response produced a stats payload: %+v", out.Stats)
	}
}

// TestZeroStatsFieldsAddNoPayload pins the wire-cost contract of the
// stats extension: a request or response without a stats payload encodes
// to value bytes identical to the legacy protocol (gob omits nil pointer
// fields), and a probe is strictly longer. Old wire bytes are unchanged.
func TestZeroStatsFieldsAddNoPayload(t *testing.T) {
	secondMessage := func(v1, v2 any) []byte {
		t.Helper()
		var buf bytes.Buffer
		enc := gob.NewEncoder(&buf)
		if err := enc.Encode(v1); err != nil {
			t.Fatal(err)
		}
		n := buf.Len()
		if err := enc.Encode(v2); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()[n:]
	}
	plain := secondMessage(
		&nearestRequest{Feat: []float64{9}, M: 1},
		&nearestRequest{Feat: []float64{1, 2}, M: 3},
	)
	legacy := secondMessage(
		&legacyNearestRequest{Feat: []float64{9}, M: 1},
		&legacyNearestRequest{Feat: []float64{1, 2}, M: 3},
	)
	probe := secondMessage(
		&nearestRequest{Feat: []float64{9}, M: 1},
		&nearestRequest{Feat: []float64{1, 2}, M: 3, Stats: &statsRequest{}},
	)
	if len(plain) < 4 || len(legacy) < 4 || !bytes.Equal(plain[3:], legacy[3:]) {
		t.Errorf("stats-less request value bytes differ from legacy protocol:\n% x\nvs\n% x", plain, legacy)
	}
	if len(probe) <= len(plain) {
		t.Errorf("probe message (%d bytes) not longer than plain (%d): Stats did not ride the wire", len(probe), len(plain))
	}

	rs := []Result{{ID: "v01", Label: 1, Dist: 0.5}}
	plainResp := secondMessage(
		&nearestResponse{Results: rs[:1]},
		&nearestResponse{Results: rs},
	)
	legacyResp := secondMessage(
		&legacyNearestResponse{Results: rs[:1]},
		&legacyNearestResponse{Results: rs},
	)
	statsResp := secondMessage(
		&nearestResponse{Results: rs[:1]},
		&nearestResponse{Stats: &statsResponse{Size: 1}},
	)
	if len(plainResp) < 4 || len(legacyResp) < 4 || !bytes.Equal(plainResp[3:], legacyResp[3:]) {
		t.Errorf("stats-less response value bytes differ from legacy protocol:\n% x\nvs\n% x", plainResp, legacyResp)
	}
	if len(statsResp) <= 4 {
		t.Errorf("stats response suspiciously small (%d bytes): payload did not ride the wire", len(statsResp))
	}
}

func TestZeroMuxFieldsAddNoPayload(t *testing.T) {
	// The multiplexing extension leans on the same gob property as the
	// trace context: zero-valued fields are omitted from the encoded value,
	// so an unnumbered response is byte-identical to the legacy protocol.
	secondMessage := func(v1, v2 any) []byte {
		t.Helper()
		var buf bytes.Buffer
		enc := gob.NewEncoder(&buf)
		if err := enc.Encode(v1); err != nil {
			t.Fatal(err)
		}
		n := buf.Len()
		if err := enc.Encode(v2); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()[n:]
	}
	rs := []Result{{ID: "v01", Label: 1, Dist: 0.5}}
	unnumbered := secondMessage(
		&nearestResponse{Results: rs[:1]},
		&nearestResponse{Results: rs},
	)
	legacy := secondMessage(
		&legacyNearestResponse{Results: rs[:1]},
		&legacyNearestResponse{Results: rs},
	)
	if len(unnumbered) < 4 || len(legacy) < 4 || !bytes.Equal(unnumbered[3:], legacy[3:]) {
		t.Errorf("unnumbered response value bytes differ from legacy protocol:\n% x\nvs\n% x", unnumbered, legacy)
	}
	numbered := secondMessage(
		&nearestResponse{Results: rs[:1]},
		&nearestResponse{Results: rs, ID: 9},
	)
	if len(numbered) <= len(unnumbered) {
		t.Errorf("numbered message (%d bytes) not longer than unnumbered (%d): ID did not ride the wire", len(numbered), len(unnumbered))
	}
}

func TestZeroTraceContextAddsNoPayload(t *testing.T) {
	// gob omits nil pointer fields from the encoded value (the reason TC
	// is *trace.Context, not trace.Context: a zero-valued struct field
	// still costs an empty-struct marker on the wire). An untraced
	// request must therefore encode to the same value bytes as the legacy
	// protocol, and a traced one must be strictly longer. Encode two
	// values per stream so the second message is pure value — no type
	// descriptor; its leading bytes are the message length and type id,
	// which legitimately differ between streams, so compare from byte 3.
	secondMessage := func(v1, v2 any) []byte {
		t.Helper()
		var buf bytes.Buffer
		enc := gob.NewEncoder(&buf)
		if err := enc.Encode(v1); err != nil {
			t.Fatal(err)
		}
		n := buf.Len()
		if err := enc.Encode(v2); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()[n:]
	}
	untraced := secondMessage(
		&nearestRequest{Feat: []float64{9}, M: 1},
		&nearestRequest{Feat: []float64{1, 2}, M: 3},
	)
	legacy := secondMessage(
		&legacyNearestRequest{Feat: []float64{9}, M: 1},
		&legacyNearestRequest{Feat: []float64{1, 2}, M: 3},
	)
	traced := secondMessage(
		&nearestRequest{Feat: []float64{9}, M: 1},
		&nearestRequest{Feat: []float64{1, 2}, M: 3, TC: &trace.Context{TraceID: "run", SpanID: 5}},
	)
	if len(untraced) < 4 || len(legacy) < 4 || !bytes.Equal(untraced[3:], legacy[3:]) {
		t.Errorf("untraced request value bytes differ from legacy protocol:\n% x\nvs\n% x", untraced, legacy)
	}
	if len(traced) <= len(untraced) {
		t.Errorf("traced message (%d bytes) not longer than untraced (%d): TC did not ride the wire", len(traced), len(untraced))
	}
}
