// Package surrogate implements the model-stealing stage of SparseTransfer
// (§IV-B-1): it queries the black-box victim with videos the attacker
// holds, records the returned rank lists, and trains a white-box surrogate
// S(·) with the ranked-list margin loss so that S's feature space
// approximates the victim's retrieval order.
package surrogate

import (
	"fmt"
	"math/rand"

	"duo/internal/models"
	"duo/internal/nn"
	"duo/internal/nn/losses"
	"duo/internal/opt"
	"duo/internal/retrieval"
	"duo/internal/tensor"
	"duo/internal/video"
)

// Lookup maps a retrieved video ID to its content. The attacker can fetch
// any video the service returns (they are public gallery entries).
type Lookup func(id string) (*video.Video, bool)

// CorpusLookup builds a Lookup over a set of videos.
func CorpusLookup(vs []*video.Video) Lookup {
	byID := make(map[string]*video.Video, len(vs))
	for _, v := range vs {
		byID[v.ID] = v
	}
	return func(id string) (*video.Video, bool) {
		v, ok := byID[id]
		return v, ok
	}
}

// Sample is one stolen training sample: an anchor the attacker queried with
// and the victim's ranked answer list (§IV-B-1's rows of T).
type Sample struct {
	Anchor *video.Video
	Ranked []*video.Video
}

// StealConfig controls dataset construction.
type StealConfig struct {
	// Rounds is Z: how many times Steps 1–2 repeat.
	Rounds int
	// PerRound is M: how many returned videos are re-queried per round.
	PerRound int
	// M is the retrieval list length requested per query.
	M int
	// MaxSamples caps the total stolen samples (the paper's surrogate
	// dataset sizes: 165 … 8,421 videos, scaled down here).
	MaxSamples int
	// Seed drives the random walk.
	Seed int64
}

// DefaultStealConfig returns settings suitable for the scaled corpora.
func DefaultStealConfig() StealConfig {
	return StealConfig{Rounds: 4, PerRound: 3, M: 8, MaxSamples: 32, Seed: 1}
}

// Steal runs the random-walk dataset construction of §IV-B-1: query with a
// random seed video, record the rank list, recurse into M of the returned
// videos, and repeat for Z rounds.
func Steal(victim retrieval.Retriever, lookup Lookup, pool []*video.Video, cfg StealConfig) ([]Sample, error) {
	if len(pool) == 0 {
		return nil, fmt.Errorf("surrogate: empty attacker video pool")
	}
	if cfg.M <= 1 {
		return nil, fmt.Errorf("surrogate: list length m=%d too small", cfg.M)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	var samples []Sample
	seen := map[string]bool{}

	query := func(v *video.Video) []*video.Video {
		rs := victim.Retrieve(v, cfg.M)
		ranked := make([]*video.Video, 0, len(rs))
		for _, r := range rs {
			if g, ok := lookup(r.ID); ok {
				ranked = append(ranked, g)
			}
		}
		return ranked
	}

	for round := 0; round < cfg.Rounds && len(samples) < cfg.MaxSamples; round++ {
		// Step 1: a fresh random video from the attacker's pool.
		vr := pool[rng.Intn(len(pool))]
		ranked := query(vr)
		if len(ranked) >= 2 {
			samples = append(samples, Sample{Anchor: vr, Ranked: ranked})
		}
		// Step 2: recurse into M uniformly selected returned videos.
		for _, i := range rng.Perm(len(ranked)) {
			if len(samples) >= cfg.MaxSamples {
				break
			}
			g := ranked[i]
			if seen[g.ID] {
				continue
			}
			seen[g.ID] = true
			sub := query(g)
			if len(sub) >= 2 {
				samples = append(samples, Sample{Anchor: g, Ranked: sub})
			}
			if i >= cfg.PerRound {
				break
			}
		}
	}
	if len(samples) == 0 {
		return nil, fmt.Errorf("surrogate: stealing produced no samples")
	}
	return samples, nil
}

// TrainConfig controls surrogate fitting.
type TrainConfig struct {
	// Epochs over the stolen samples.
	Epochs int
	// LR is the Adam learning rate.
	LR float64
	// Margin is γ in the ranked-list loss (0.2 in the paper).
	Margin float64
	// Seed shuffles sample order.
	Seed int64
}

// DefaultTrainConfig mirrors the paper's settings (γ=0.2, Adam).
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{Epochs: 5, LR: 0.01, Margin: 0.2, Seed: 1}
}

// Train fits the surrogate to the stolen rank lists, returning the mean
// loss per epoch.
func Train(s models.Model, samples []Sample, cfg TrainConfig) ([]float64, error) {
	if len(samples) == 0 {
		return nil, fmt.Errorf("surrogate: no training samples")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	optimizer := opt.NewAdam(cfg.LR)
	loss := losses.RankedList{Margin: cfg.Margin}
	params := s.Params()

	history := make([]float64, 0, cfg.Epochs)
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		total := 0.0
		for _, i := range rng.Perm(len(samples)) {
			sm := samples[i]
			anchorEmb, anchorCache := s.Forward(sm.Anchor.Data)
			rankedCaches := make([]nn.Cache, len(sm.Ranked))
			rankedList := make([]*tensor.Tensor, len(sm.Ranked))
			for j, rv := range sm.Ranked {
				rankedList[j], rankedCaches[j] = s.Forward(rv.Data)
			}

			lv, ga, gs := loss.Loss(anchorEmb, rankedList)
			total += lv

			opt.ZeroGrads(params)
			s.Backward(anchorCache, ga)
			for j := range sm.Ranked {
				s.Backward(rankedCaches[j], gs[j])
			}
			optimizer.Step(params)
		}
		history = append(history, total/float64(len(samples)))
	}
	return history, nil
}

// Agreement measures how well the surrogate's ranking matches the victim's
// on held-out queries: the mean NDCG-style co-occurrence between the two
// top-m lists when both retrieve from the same gallery. Used by Fig. 4's
// surrogate-quality sweeps.
func Agreement(victim retrieval.Retriever, s models.Model, gallery []*video.Video, queries []*video.Video, m int) float64 {
	if len(queries) == 0 {
		return 0
	}
	sEng := retrieval.NewEngine(s, gallery)
	total := 0.0
	for _, q := range queries {
		a := retrieval.IDs(victim.Retrieve(q, m))
		b := retrieval.IDs(sEng.Retrieve(q, m))
		hits := 0
		inB := map[string]bool{}
		for _, id := range b {
			inB[id] = true
		}
		for _, id := range a {
			if inB[id] {
				hits++
			}
		}
		if len(a) > 0 {
			total += float64(hits) / float64(len(a))
		}
	}
	return total / float64(len(queries))
}
