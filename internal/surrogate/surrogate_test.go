package surrogate

import (
	"math/rand"
	"testing"

	"duo/internal/dataset"
	"duo/internal/models"
	"duo/internal/nn/losses"
	"duo/internal/retrieval"
)

// testVictim builds a small trained victim system.
func testVictim(t *testing.T) (*retrieval.Engine, *dataset.Corpus) {
	t.Helper()
	c, err := dataset.Generate(dataset.Config{
		Name: "StealSim", Categories: 4, TrainPerCategory: 6, TestPerCategory: 3,
		Frames: 8, Channels: 3, Height: 12, Width: 12, Seed: 21,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(22))
	g := models.GeometryOf(c.Train[0])
	victim := models.NewSlowFast(rng, g, 16)
	cfg := models.DefaultTrainConfig()
	cfg.Epochs = 3
	if _, err := models.Train(victim, losses.Triplet{Margin: 0.2}, c.Train, cfg); err != nil {
		t.Fatal(err)
	}
	return retrieval.NewEngine(victim, c.Train), c
}

func TestStealProducesSamples(t *testing.T) {
	eng, c := testVictim(t)
	cfg := DefaultStealConfig()
	samples, err := Steal(eng, CorpusLookup(c.Train), c.Test, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) == 0 || len(samples) > cfg.MaxSamples {
		t.Fatalf("got %d samples, cap %d", len(samples), cfg.MaxSamples)
	}
	for _, s := range samples {
		if s.Anchor == nil || len(s.Ranked) < 2 {
			t.Fatal("malformed sample")
		}
	}
}

func TestStealUsesVictimQueries(t *testing.T) {
	eng, c := testVictim(t)
	eng.ResetQueryCount()
	if _, err := Steal(eng, CorpusLookup(c.Train), c.Test, DefaultStealConfig()); err != nil {
		t.Fatal(err)
	}
	if eng.QueryCount() == 0 {
		t.Error("stealing consumed no victim queries")
	}
}

func TestStealErrors(t *testing.T) {
	eng, c := testVictim(t)
	if _, err := Steal(eng, CorpusLookup(c.Train), nil, DefaultStealConfig()); err == nil {
		t.Error("empty pool accepted")
	}
	bad := DefaultStealConfig()
	bad.M = 1
	if _, err := Steal(eng, CorpusLookup(c.Train), c.Test, bad); err == nil {
		t.Error("m=1 accepted")
	}
}

func TestStealDeterministic(t *testing.T) {
	eng, c := testVictim(t)
	a, err := Steal(eng, CorpusLookup(c.Train), c.Test, DefaultStealConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Steal(eng, CorpusLookup(c.Train), c.Test, DefaultStealConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("sample counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Anchor.ID != b[i].Anchor.ID {
			t.Fatal("steal not deterministic")
		}
	}
}

func TestTrainReducesRankingLoss(t *testing.T) {
	eng, c := testVictim(t)
	samples, err := Steal(eng, CorpusLookup(c.Train), c.Test, DefaultStealConfig())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(23))
	g := models.GeometryOf(c.Train[0])
	s := models.NewC3D(rng, g, 16)
	cfg := DefaultTrainConfig()
	cfg.Epochs = 4
	hist, err := Train(s, samples, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if hist[len(hist)-1] >= hist[0] {
		t.Errorf("surrogate loss did not decrease: %v", hist)
	}
}

func TestTrainEmptySamplesErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	s := models.NewC3D(rng, models.Geometry{Frames: 8, Channels: 3, Height: 12, Width: 12}, 8)
	if _, err := Train(s, nil, DefaultTrainConfig()); err == nil {
		t.Error("empty samples accepted")
	}
}

func TestTrainedSurrogateAgreesMoreThanRandom(t *testing.T) {
	eng, c := testVictim(t)
	samples, err := Steal(eng, CorpusLookup(c.Train), c.Test, DefaultStealConfig())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(25))
	g := models.GeometryOf(c.Train[0])
	s := models.NewC3D(rng, g, 16)
	before := Agreement(eng, s, c.Train, c.Test, 6)
	cfg := DefaultTrainConfig()
	cfg.Epochs = 6
	if _, err := Train(s, samples, cfg); err != nil {
		t.Fatal(err)
	}
	after := Agreement(eng, s, c.Train, c.Test, 6)
	if after < before-0.05 {
		t.Errorf("surrogate agreement degraded: %g → %g", before, after)
	}
	if after <= 0.2 {
		t.Errorf("surrogate agreement too low: %g", after)
	}
}

func TestCorpusLookup(t *testing.T) {
	_, c := testVictim(t)
	lk := CorpusLookup(c.Train)
	if v, ok := lk(c.Train[0].ID); !ok || v != c.Train[0] {
		t.Error("lookup miss for known ID")
	}
	if _, ok := lk("nope"); ok {
		t.Error("lookup hit for unknown ID")
	}
}
