package telemetry

import "testing"

// TestDisabledPathAllocatesNothing is the zero-overhead contract: every
// instrument operation on the nil (disabled) path must perform zero
// allocations. AllocsPerRun is exact, so this is a hard assertion, not a
// benchmark eyeball.
func TestDisabledPathAllocatesNothing(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	h := r.Latency("x")
	rb := r.Ring("x", 8)
	if n := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(3)
		h.Observe(1)
		sw := h.Start()
		sw.Stop()
		rb.Push(1)
	}); n != 0 {
		t.Errorf("disabled instruments allocated %.1f allocs/op, want 0", n)
	}
}

// TestEnabledHotOpsAllocateNothing: even enabled, the per-observation hot
// ops are allocation-free (lookup happens once at wiring time).
func TestEnabledHotOpsAllocateNothing(t *testing.T) {
	r := New()
	c := r.Counter("x")
	h := r.Latency("x_ns")
	rb := r.Ring("x", 64)
	if n := testing.AllocsPerRun(1000, func() {
		c.Inc()
		h.Observe(250)
		sw := h.Start()
		sw.Stop()
		rb.Push(0.5)
	}); n != 0 {
		t.Errorf("enabled hot ops allocated %.1f allocs/op, want 0", n)
	}
}

func BenchmarkCounterDisabled(b *testing.B) {
	var r *Registry
	c := r.Counter("x")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterEnabled(b *testing.B) {
	c := New().Counter("x")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserveDisabled(b *testing.B) {
	var r *Registry
	h := r.Latency("x")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i))
	}
}

func BenchmarkHistogramObserveEnabled(b *testing.B) {
	h := New().Latency("x")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i))
	}
}

func BenchmarkStopwatchDisabled(b *testing.B) {
	var r *Registry
	h := r.Latency("x")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sw := h.Start()
		sw.Stop()
	}
}

func BenchmarkStopwatchEnabled(b *testing.B) {
	h := New().Latency("x")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sw := h.Start()
		sw.Stop()
	}
}
