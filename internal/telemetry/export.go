package telemetry

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net/http"
	"net/http/pprof"
	"sort"
	"strings"
	"time"
)

// Snapshot is a point-in-time copy of every instrument in a registry,
// shaped for JSON export (`/metrics.json`, expvar, `/fleet.json`) and for
// cross-node aggregation (gob over the stats RPC, then Merge/MergeAll).
// JSON encoding emits map keys sorted, so two snapshots of equal state
// marshal to identical bytes.
type Snapshot struct {
	Counters   map[string]int64          `json:"counters,omitempty"`
	Gauges     map[string]int64          `json:"gauges,omitempty"`
	Histograms map[string]HistogramStats `json:"histograms,omitempty"`
	Rings      map[string][]float64      `json:"rings,omitempty"`
}

// Snapshot captures the registry's current state. A nil registry yields an
// empty snapshot. Individual instruments are read atomically; the snapshot
// as a whole is taken without stopping writers, which is safe because
// every exported value is either a single atomic read or a consistent
// bucket sum (see Histogram.Stats).
func (r *Registry) Snapshot() *Snapshot {
	s := &Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramStats{},
		Rings:      map[string][]float64{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	rings := make(map[string]*Ring, len(r.rings))
	for k, v := range r.rings {
		rings[k] = v
	}
	r.mu.Unlock()

	for k, v := range counters {
		s.Counters[k] = v.Value()
	}
	for k, v := range gauges {
		s.Gauges[k] = v.Value()
	}
	for k, v := range hists {
		s.Histograms[k] = v.Stats()
	}
	for k, v := range rings {
		s.Rings[k] = v.Values()
	}
	return s
}

// MetricsHandler serves the registry snapshot as pretty-printed JSON.
func (r *Registry) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(r.Snapshot())
	})
}

// PublishExpvar exposes the registry under the given expvar name (visible
// at /debug/vars). Publishing the same name twice is a no-op rather than
// the expvar.Publish panic, so wiring code can run more than once.
func (r *Registry) PublishExpvar(name string) {
	if expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
}

// AdminMux builds the operational endpoint set served by `retrievald
// -admin`: the registry snapshot, the process expvars, and pprof.
func AdminMux(r *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics.json", r.MetricsHandler())
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Summary renders the registry as an aligned text table (the `-telemetry`
// output of duoattack/duobench); see Snapshot.Render.
func (r *Registry) Summary() string { return r.Snapshot().Render() }

// Render renders the snapshot as an aligned text table: counters and
// gauges first, then one row per histogram with count, mean, and latency
// quantiles, then the rings. Histogram names ending in "_ns" are formatted
// as durations. Every section walks names in sorted order, so the output
// for equal state is byte-stable across runs (the same contract
// /fleet.json gets from encoding/json's sorted map keys) — duostat renders
// merged fleet snapshots through this same path.
func (s *Snapshot) Render() string {
	var b strings.Builder
	b.WriteString("== telemetry ==\n")

	names := make([]string, 0, len(s.Counters)+len(s.Gauges))
	names = append(names, sortedKeys(s.Counters)...)
	names = append(names, sortedKeys(s.Gauges)...)
	sort.Strings(names)
	for _, k := range names {
		if v, ok := s.Counters[k]; ok {
			fmt.Fprintf(&b, "%-36s %12d\n", k, v)
		} else {
			fmt.Fprintf(&b, "%-36s %12d (gauge)\n", k, s.Gauges[k])
		}
	}

	hnames := sortedKeys(s.Histograms)
	if len(hnames) > 0 {
		fmt.Fprintf(&b, "%-36s %8s %10s %10s %10s %10s\n",
			"stage", "count", "mean", "p50", "p95", "p99")
	}
	for _, k := range hnames {
		st := s.Histograms[k]
		if strings.HasSuffix(k, "_ns") {
			fmt.Fprintf(&b, "%-36s %8d %10s %10s %10s %10s\n", k, st.Count,
				fmtNs(st.Mean), fmtNs(st.P50), fmtNs(st.P95), fmtNs(st.P99))
		} else {
			fmt.Fprintf(&b, "%-36s %8d %10.3g %10.3g %10.3g %10.3g\n", k, st.Count,
				st.Mean, st.P50, st.P95, st.P99)
		}
	}

	for _, k := range sortedKeys(s.Rings) {
		vs := s.Rings[k]
		if len(vs) == 0 {
			continue
		}
		fmt.Fprintf(&b, "%-36s %d samples, last %.6g\n", k, len(vs), vs[len(vs)-1])
	}
	return b.String()
}

// fmtNs renders a nanosecond quantity as a rounded duration.
func fmtNs(ns float64) string {
	d := time.Duration(ns)
	switch {
	case d >= time.Second:
		return d.Round(time.Millisecond).String()
	case d >= time.Millisecond:
		return d.Round(time.Microsecond).String()
	}
	return d.Round(time.Nanosecond).String()
}
