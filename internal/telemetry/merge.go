package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// This file implements the deterministic snapshot merge underneath the
// fleet observability plane: the coordinator pulls one Snapshot per data
// node and folds them into a cluster-wide view with Merge/MergeAll.
//
// Merge is associative and commutative by construction, so a fleet rollup
// does not depend on which node answered first:
//
//   - counters sum;
//   - gauges sum, except names matched by gaugeMergesByMax (breaker/state
//     mirrors, config echoes, high-water marks), which take the maximum —
//     max is order-free, unlike last-write, which is why the rule is
//     sum-or-max rather than the last-write some systems use;
//   - histograms merge bucket-wise, which requires identical bucket
//     bounds; a layout mismatch is a typed *HistogramMergeError. Counts,
//     min, and max merge exactly; Sum is a float accumulation, so it is
//     bitwise order-independent only for integer-valued observations
//     (which every *_ns latency histogram records) and order-independent
//     up to summation rounding otherwise. Quantiles are recomputed from
//     the merged buckets by the same estimator as live histograms;
//   - rings are dropped: a ring is a node-local recent-sample window
//     (flight-recorder material) and interleaving two nodes' windows has
//     no meaningful order. Per-node rings stay available in the per-node
//     snapshots a fleet view retains alongside the merge.
//
// Every key iteration below either aggregates into a map (order-free) or
// walks keys in sorted order, so the merge — including which histogram a
// mismatch error names first — is deterministic (mapiter-clean).

// HistogramMergeError reports a bucket-layout mismatch between two
// snapshots' histograms of the same name. Merging such histograms
// bucket-wise would silently misclassify observations, so the merge
// refuses instead.
type HistogramMergeError struct {
	// Name is the histogram's registry name.
	Name string
	// A and B are the two incompatible bucket bound layouts.
	A, B []float64
}

func (e *HistogramMergeError) Error() string {
	return fmt.Sprintf("telemetry: histogram %q bucket bounds differ between snapshots (%d vs %d bounds): cannot merge bucket-wise", e.Name, len(e.A), len(e.B))
}

// gaugeMergesByMax reports whether the named gauge merges by maximum
// instead of sum. State mirrors (".state"/"_state" suffixes, e.g. breaker
// automata), configuration echoes (".config." segments — equal on every
// node, and max of equals is the value itself), and high-water marks are
// max-merged; everything else (queue depths, in-flight counts, heap
// bytes, goroutines) is fleet-additive and sums.
func gaugeMergesByMax(name string) bool {
	return strings.HasSuffix(name, ".state") ||
		strings.HasSuffix(name, "_state") ||
		strings.HasSuffix(name, "_highwater") ||
		strings.Contains(name, ".config.")
}

// Merge returns a new snapshot combining s and o under the rules above.
// Neither operand is mutated; the result's maps are always non-nil. The
// only error is a *HistogramMergeError for incompatible bucket layouts.
func (s *Snapshot) Merge(o *Snapshot) (*Snapshot, error) {
	out := &Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramStats{},
		Rings:      map[string][]float64{},
	}
	for _, src := range []*Snapshot{s, o} {
		if src == nil {
			continue
		}
		for k, v := range src.Counters {
			out.Counters[k] += v
		}
		for k, v := range src.Gauges {
			prev, seen := out.Gauges[k]
			switch {
			case !seen:
				out.Gauges[k] = v
			case gaugeMergesByMax(k):
				if v > prev {
					out.Gauges[k] = v
				}
			default:
				out.Gauges[k] = prev + v
			}
		}
	}
	// Histograms walk sorted names so the first mismatch reported is the
	// same one on every run.
	names := map[string]bool{}
	for _, src := range []*Snapshot{s, o} {
		if src == nil {
			continue
		}
		for k := range src.Histograms {
			names[k] = true
		}
	}
	for _, k := range sortedKeys(names) {
		var a, b HistogramStats
		if s != nil {
			a = s.Histograms[k]
		}
		if o != nil {
			b = o.Histograms[k]
		}
		m, err := mergeHistogramStats(k, a, b)
		if err != nil {
			return nil, err
		}
		out.Histograms[k] = m
	}
	return out, nil
}

// MergeAll folds snapshots left to right with Merge. Zero inputs yield an
// empty snapshot; nil entries merge as empty. Since Merge is associative
// and commutative (up to float summation rounding in histogram sums), the
// fold order cannot change the result beyond that rounding — callers still
// pass a deterministic order (node index) so even the rounding is pinned.
func MergeAll(snaps ...*Snapshot) (*Snapshot, error) {
	out := &Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramStats{},
		Rings:      map[string][]float64{},
	}
	var err error
	for _, s := range snaps {
		out, err = out.Merge(s)
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// mergeHistogramStats merges two bucket-carrying stats of one histogram.
// An empty side (Count 0 — the zero HistogramStats a fresh or absent
// histogram snapshots to) is the merge identity. Bounds must otherwise be
// bitwise identical: bounds are copied configuration constants, so exact
// Float64bits equality is the contract, not a rounding hazard.
func mergeHistogramStats(name string, a, b HistogramStats) (HistogramStats, error) {
	if a.Count == 0 {
		return cloneHistogramStats(b), nil
	}
	if b.Count == 0 {
		return cloneHistogramStats(a), nil
	}
	if len(a.Bounds) != len(b.Bounds) || len(a.Buckets) != len(b.Buckets) {
		return HistogramStats{}, &HistogramMergeError{Name: name, A: a.Bounds, B: b.Bounds}
	}
	for i := range a.Bounds {
		if math.Float64bits(a.Bounds[i]) != math.Float64bits(b.Bounds[i]) {
			return HistogramStats{}, &HistogramMergeError{Name: name, A: a.Bounds, B: b.Bounds}
		}
	}
	buckets := make([]int64, len(a.Buckets))
	for i := range buckets {
		buckets[i] = a.Buckets[i] + b.Buckets[i]
	}
	min, max := a.Min, a.Max
	if b.Min < min {
		min = b.Min
	}
	if b.Max > max {
		max = b.Max
	}
	return statsFromBuckets(append([]float64(nil), a.Bounds...), buckets, a.Sum+b.Sum, min, max), nil
}

// cloneHistogramStats deep-copies the slice fields so a merged snapshot
// never aliases an operand's buckets.
func cloneHistogramStats(h HistogramStats) HistogramStats {
	h.Bounds = append([]float64(nil), h.Bounds...)
	h.Buckets = append([]int64(nil), h.Buckets...)
	return h
}

// sortedKeys returns the map's keys in ascending order — the shared
// deterministic-iteration helper for every export and merge path.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
