package telemetry

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"
)

// shardSnapshots builds n per-shard snapshots whose histograms share one
// bucket layout, plus one combined registry that observed every value.
// Observations are integer-valued so float sums are exact and merge
// results can be compared bitwise (the *_ns latency histograms this
// models record integer nanoseconds for the same reason).
func shardSnapshots(t *testing.T, rng *rand.Rand, n int) (shards []*Snapshot, combined *Snapshot) {
	t.Helper()
	bounds := []float64{10, 100, 1000, 10000}
	all := New()
	allHist := all.Histogram("scan_ns", bounds)
	for i := 0; i < n; i++ {
		r := New()
		h := r.Histogram("scan_ns", bounds)
		for k := 0; k < 50+rng.Intn(100); k++ {
			v := float64(rng.Intn(20000))
			h.Observe(v)
			allHist.Observe(v)
		}
		q := int64(rng.Intn(500))
		r.Counter("queries").Add(q)
		all.Counter("queries").Add(q)
		r.Gauge("inflight").Set(int64(i + 1)) // sums
		r.Gauge("breaker_state").Set(int64(rng.Intn(3)))
		shards = append(shards, r.Snapshot())
	}
	return shards, all.Snapshot()
}

// TestMergeEqualsCombinedHistogram is the sharding property: merging N
// per-shard snapshots bucket-wise must equal one histogram that observed
// every shard's values — the deterministic-merge contract the fleet view
// (and ROADMAP item 4's detection plane) inherits.
func TestMergeEqualsCombinedHistogram(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 20; trial++ {
		shards, combined := shardSnapshots(t, rng, 2+rng.Intn(5))
		merged, err := MergeAll(shards...)
		if err != nil {
			t.Fatalf("trial %d: merge: %v", trial, err)
		}
		if got, want := merged.Histograms["scan_ns"], combined.Histograms["scan_ns"]; !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: merged histogram != combined:\n got %+v\nwant %+v", trial, got, want)
		}
		if got, want := merged.Counters["queries"], combined.Counters["queries"]; got != want {
			t.Fatalf("trial %d: merged counter %d != combined %d", trial, got, want)
		}
	}
}

// TestMergeAssociativeCommutative: any parenthesization and any
// permutation of the operands produce the identical snapshot (integer
// observations make even the float sums exact).
func TestMergeAssociativeCommutative(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 10; trial++ {
		shards, _ := shardSnapshots(t, rng, 3)
		a, b, c := shards[0], shards[1], shards[2]

		ab, err := a.Merge(b)
		if err != nil {
			t.Fatal(err)
		}
		abc1, err := ab.Merge(c)
		if err != nil {
			t.Fatal(err)
		}
		bc, err := b.Merge(c)
		if err != nil {
			t.Fatal(err)
		}
		abc2, err := a.Merge(bc)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(abc1, abc2) {
			t.Fatalf("trial %d: merge is not associative:\n(a·b)·c %+v\na·(b·c) %+v", trial, abc1, abc2)
		}

		want, err := MergeAll(shards...)
		if err != nil {
			t.Fatal(err)
		}
		perm := rng.Perm(len(shards))
		shuffled := make([]*Snapshot, len(shards))
		for i, p := range perm {
			shuffled[i] = shards[p]
		}
		got, err := MergeAll(shuffled...)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: merge not commutative under permutation %v", trial, perm)
		}
	}
}

func TestMergeGaugeRules(t *testing.T) {
	a := &Snapshot{Gauges: map[string]int64{
		"queue.depth":                  3,
		"node.breaker_state":           0,
		"breaker.state":                2,
		"admission.config.maxinflight": 8,
		"inflight_highwater":           5,
	}}
	b := &Snapshot{Gauges: map[string]int64{
		"queue.depth":                  4,
		"node.breaker_state":           1,
		"breaker.state":                1,
		"admission.config.maxinflight": 8,
		"inflight_highwater":           9,
	}}
	m, err := a.Merge(b)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int64{
		"queue.depth":                  7, // additive
		"node.breaker_state":           1, // max (suffix _state)
		"breaker.state":                2, // max (suffix .state)
		"admission.config.maxinflight": 8, // max (config echo)
		"inflight_highwater":           9, // max (high-water mark)
	}
	if !reflect.DeepEqual(m.Gauges, want) {
		t.Errorf("gauge merge = %v, want %v", m.Gauges, want)
	}
}

func TestMergeBoundsMismatchTypedError(t *testing.T) {
	a := New()
	a.Histogram("h", []float64{1, 2, 3}).Observe(1)
	b := New()
	b.Histogram("h", []float64{1, 2}).Observe(1)
	_, err := a.Snapshot().Merge(b.Snapshot())
	var hme *HistogramMergeError
	if !errors.As(err, &hme) {
		t.Fatalf("merge error = %v, want *HistogramMergeError", err)
	}
	if hme.Name != "h" || len(hme.A) != 3 || len(hme.B) != 2 {
		t.Errorf("error detail = %+v", hme)
	}
}

// TestMergeEmptyAndNil: the zero/empty/nil snapshot is the merge identity,
// merged rings are dropped, and the result never aliases operand buckets.
func TestMergeEmptyAndNil(t *testing.T) {
	r := New()
	r.Histogram("h", []float64{5, 50}).Observe(7)
	r.Counter("c").Add(2)
	r.Ring("ring", 4).Push(1.5)
	s := r.Snapshot()

	for _, other := range []*Snapshot{nil, {}, (&Registry{}).Snapshot()} {
		m, err := s.Merge(other)
		if err != nil {
			t.Fatal(err)
		}
		if m.Counters["c"] != 2 || !reflect.DeepEqual(m.Histograms["h"], s.Histograms["h"]) {
			t.Errorf("identity merge changed state: %+v", m)
		}
		if len(m.Rings) != 0 {
			t.Errorf("merge retained rings: %v", m.Rings)
		}
	}

	m, err := s.Merge(nil)
	if err != nil {
		t.Fatal(err)
	}
	m.Histograms["h"].Buckets[0] = 99
	if s.Histograms["h"].Buckets[0] == 99 {
		t.Error("merged snapshot aliases operand buckets")
	}
}

// TestMergedQuantilesMatchEstimator: a merged histogram's quantiles come
// from the same bucket estimator as a live one, including the
// clamp-to-observed-range rule.
func TestMergedQuantilesMatchEstimator(t *testing.T) {
	bounds := []float64{100, 200}
	a, b := New(), New()
	for i := 0; i < 10; i++ {
		a.Histogram("h", bounds).Observe(150)
	}
	for i := 0; i < 10; i++ {
		b.Histogram("h", bounds).Observe(160)
	}
	m, err := a.Snapshot().Merge(b.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	st := m.Histograms["h"]
	if st.Count != 20 || st.Min != 150 || st.Max != 160 {
		t.Fatalf("merged aggregates wrong: %+v", st)
	}
	// All 20 observations sit in (100, 200]; raw interpolation would put
	// p99 near 199, but the estimator clamps to the observed max.
	if st.P99 != 160 {
		t.Errorf("merged p99 = %g, want clamped observed max 160", st.P99)
	}
}
