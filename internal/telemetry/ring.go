package telemetry

import "sync"

// Ring is a bounded ring buffer of float64 samples — the 𝕋-objective
// trajectory buffer of the attack pipeline keeps the most recent window
// without growing with the query budget. The nil Ring is a valid no-op
// instrument.
type Ring struct {
	mu    sync.Mutex
	buf   []float64
	next  int
	full  bool
	total int64
}

func newRing(capacity int) *Ring {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring{buf: make([]float64, capacity)}
}

// Push appends a sample, evicting the oldest once full; no-op on nil.
func (r *Ring) Push(v float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.buf[r.next] = v
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
	r.total++
	r.mu.Unlock()
}

// Total returns how many samples were ever pushed (0 for nil).
func (r *Ring) Total() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Values returns the retained samples in push order, oldest first (nil for
// a nil or empty ring). The returned slice is a copy.
func (r *Ring) Values() []float64 {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.full {
		if r.next == 0 {
			return nil
		}
		return append([]float64(nil), r.buf[:r.next]...)
	}
	out := make([]float64, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}
