package telemetry

import (
	"runtime"
	"slices"
	"sync"
	"time"
)

// RuntimeStats publishes process-runtime health gauges through a registry:
//
//	runtime.heap.bytes    live heap allocation (MemStats.HeapAlloc)
//	runtime.goroutines    current goroutine count
//	runtime.gc.pause.p99  p99 of the retained GC pause window, nanoseconds
//	runtime.gc.cycles     completed GC cycles (NumGC)
//
// It follows the registry's instrument conventions exactly: gauges are
// resolved once at construction, samples are write-only (§10 — nothing in
// any computation path reads them back), and a collector built over a nil
// registry is a permanent no-op whose Sample performs zero allocations
// and never touches the runtime, so wiring it unconditionally costs
// nothing when telemetry is off.
//
// In a fleet merge, heap bytes and goroutines sum across nodes (fleet
// totals) while the p99 gauge sums too — operators read per-node values
// from the fleet view's per-node snapshots, which is where a per-node
// pause p99 is meaningful.
type RuntimeStats struct {
	heapBytes  *Gauge
	goroutines *Gauge
	gcPauseP99 *Gauge
	gcCycles   *Gauge
	enabled    bool

	mu     sync.Mutex
	pauses [256]uint64 // scratch copy of MemStats.PauseNs, kept to avoid per-sample allocation
}

// NewRuntimeStats resolves the runtime gauges in r. A nil registry yields
// a disabled collector (valid, no-op).
func NewRuntimeStats(r *Registry) *RuntimeStats {
	return &RuntimeStats{
		heapBytes:  r.Gauge("runtime.heap.bytes"),
		goroutines: r.Gauge("runtime.goroutines"),
		gcPauseP99: r.Gauge("runtime.gc.pause.p99"),
		gcCycles:   r.Gauge("runtime.gc.cycles"),
		enabled:    r != nil,
	}
}

// Sample reads the runtime once and publishes every gauge. Disabled (nil
// registry) collectors return immediately without reading the runtime —
// the zero-allocation contract is pinned by a test. Safe for concurrent
// use; Sample is a cold path (admin scrapes, periodic polls), so the
// mutex is never contended by serving traffic.
func (rs *RuntimeStats) Sample() {
	if rs == nil || !rs.enabled {
		return
	}
	rs.mu.Lock()
	defer rs.mu.Unlock()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	rs.heapBytes.Set(int64(ms.HeapAlloc))
	rs.goroutines.Set(int64(runtime.NumGoroutine()))
	rs.gcCycles.Set(int64(ms.NumGC))
	rs.gcPauseP99.Set(pauseP99(&rs.pauses, &ms))
}

// pauseP99 computes the p99 of the GC pauses the runtime retains (the
// PauseNs circular buffer holds the most recent 256). Zero cycles yield 0.
func pauseP99(scratch *[256]uint64, ms *runtime.MemStats) int64 {
	n := int(ms.NumGC)
	if n == 0 {
		return 0
	}
	if n > len(ms.PauseNs) {
		n = len(ms.PauseNs)
	}
	copy(scratch[:n], ms.PauseNs[:n])
	window := scratch[:n]
	slices.Sort(window)
	// Nearest-rank p99: the smallest value with ≥ 99% of the window at or
	// below it.
	idx := (99*n + 99) / 100
	if idx > n {
		idx = n
	}
	return int64(window[idx-1])
}

// Poll samples every interval on a background goroutine until the
// returned stop function is called (idempotent). Disabled collectors
// return a no-op stop without starting anything.
func (rs *RuntimeStats) Poll(interval time.Duration) (stop func()) {
	if rs == nil || !rs.enabled || interval <= 0 {
		return func() {}
	}
	done := make(chan struct{})
	tick := time.NewTicker(interval) //duolint:allow walltime runtime-gauge sampling cadence; samples are write-only (§10)
	go func() {
		defer tick.Stop()
		for {
			select {
			case <-done:
				return
			case <-tick.C:
				rs.Sample()
			}
		}
	}()
	var once sync.Once
	return func() { once.Do(func() { close(done) }) }
}
