package telemetry

import (
	"runtime"
	"testing"
	"time"
)

func TestRuntimeStatsPublishesGauges(t *testing.T) {
	r := New()
	rs := NewRuntimeStats(r)
	runtime.GC() // ensure at least one cycle so the pause window is non-empty
	rs.Sample()
	s := r.Snapshot()
	if s.Gauges["runtime.heap.bytes"] <= 0 {
		t.Errorf("heap.bytes = %d, want > 0", s.Gauges["runtime.heap.bytes"])
	}
	if s.Gauges["runtime.goroutines"] <= 0 {
		t.Errorf("goroutines = %d, want > 0", s.Gauges["runtime.goroutines"])
	}
	if s.Gauges["runtime.gc.cycles"] <= 0 {
		t.Errorf("gc.cycles = %d, want > 0", s.Gauges["runtime.gc.cycles"])
	}
	if p99 := s.Gauges["runtime.gc.pause.p99"]; p99 < 0 {
		t.Errorf("gc.pause.p99 = %d, want >= 0", p99)
	}
}

// TestRuntimeStatsNilRegistryAllocatesNothing pins the disabled-path
// contract: a collector over a nil registry must sample with zero
// allocations (and, per the early return, without reading the runtime).
func TestRuntimeStatsNilRegistryAllocatesNothing(t *testing.T) {
	rs := NewRuntimeStats(nil)
	if n := testing.AllocsPerRun(1000, func() {
		rs.Sample()
	}); n != 0 {
		t.Errorf("nil-registry Sample allocated %.1f allocs/op, want 0", n)
	}
	var nilRS *RuntimeStats
	if n := testing.AllocsPerRun(1000, func() {
		nilRS.Sample()
	}); n != 0 {
		t.Errorf("nil collector Sample allocated %.1f allocs/op, want 0", n)
	}
}

func TestRuntimeStatsPollStops(t *testing.T) {
	r := New()
	rs := NewRuntimeStats(r)
	stop := rs.Poll(time.Millisecond)
	defer stop()
	deadline := time.Now().Add(2 * time.Second) //duolint:allow walltime test poll deadline
	for r.Snapshot().Gauges["runtime.goroutines"] == 0 {
		if time.Now().After(deadline) { //duolint:allow walltime test poll deadline
			t.Fatal("poller never sampled")
		}
		time.Sleep(time.Millisecond) //duolint:allow walltime test poll backoff
	}
	stop()
	stop() // idempotent

	if s := NewRuntimeStats(nil).Poll(time.Millisecond); s == nil {
		t.Error("disabled Poll must return a usable stop func")
	} else {
		s()
	}
}

func TestPauseP99(t *testing.T) {
	var scratch [256]uint64
	var ms runtime.MemStats
	if got := pauseP99(&scratch, &ms); got != 0 {
		t.Errorf("zero cycles p99 = %d, want 0", got)
	}
	ms.NumGC = 4
	ms.PauseNs = [256]uint64{40, 10, 30, 20}
	if got := pauseP99(&scratch, &ms); got != 40 {
		t.Errorf("p99 of {10,20,30,40} = %d, want 40", got)
	}
}
