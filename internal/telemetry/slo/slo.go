// Package slo evaluates service-level objectives over telemetry
// snapshots. It is deliberately snapshot-driven and clockless: callers
// feed one cumulative Snapshot per logical tick (an admin scrape, a
// duostat -watch poll, a test loop) and the evaluator computes
// multi-window burn rates from the per-tick deltas. Determinism falls
// out of that design — the same snapshot sequence always yields the
// same reports, which is what makes the burn-rate math testable without
// a clock and reproducible across coordinator restarts.
//
// The alerting model is the standard multi-window burn rate: an
// objective pages only when BOTH a fast window (quick detection) and a
// slow window (burst tolerance) burn error budget faster than the
// configured threshold. Windows are measured in ticks; at the default
// one-minute scrape cadence the defaults of 5 and 60 ticks correspond
// to the classic 5m/1h pairing, but nothing in the engine assumes wall
// time.
package slo

import (
	"fmt"

	"duo/internal/telemetry"
)

// Objective declares one SLO over registry instruments. Exactly one of
// the two shapes must be filled in:
//
//   - availability: Good and Bad name counters (e.g. admitted vs shed
//     requests); the objective tracks Good/(Good+Bad) against Target.
//   - latency: Histogram names a bucketed histogram and ThresholdNs the
//     good-latency bound; observations in buckets at or below the
//     threshold count as good. The threshold should coincide with a
//     bucket upper bound — the engine counts whole buckets and never
//     interpolates, so a mid-bucket threshold silently rounds down to
//     the nearest bound.
type Objective struct {
	// Name identifies the objective in reports.
	Name string
	// Good and Bad are counter names for an availability objective.
	// Either may be empty (treated as always zero), but not both.
	Good, Bad string
	// Histogram and ThresholdNs define a latency objective.
	Histogram   string
	ThresholdNs float64
	// Target is the objective, e.g. 0.999 for three nines. Must be in
	// (0, 1); the error budget is 1-Target.
	Target float64
}

// latency reports which shape the objective takes.
func (o Objective) latency() bool { return o.Histogram != "" }

// Config tunes the evaluator. Zero values take the defaults.
type Config struct {
	// FastWindow and SlowWindow are the two burn windows in ticks.
	// Defaults: 5 and 60 (5m and 1h at a one-minute cadence).
	FastWindow, SlowWindow int
	// PageBurn is the burn-rate threshold both windows must exceed to
	// page. Default 14.4 — the rate that exhausts a 30-day budget in
	// two days.
	PageBurn float64
}

// DefaultConfig returns the stock multi-window configuration.
func DefaultConfig() Config {
	return Config{FastWindow: 5, SlowWindow: 60, PageBurn: 14.4}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.FastWindow <= 0 {
		c.FastWindow = d.FastWindow
	}
	if c.SlowWindow <= 0 {
		c.SlowWindow = d.SlowWindow
	}
	if c.PageBurn <= 0 {
		c.PageBurn = d.PageBurn
	}
	if c.SlowWindow < c.FastWindow {
		c.SlowWindow = c.FastWindow
	}
	return c
}

// ObjectiveError reports an invalid objective declaration.
type ObjectiveError struct {
	Name   string
	Reason string
}

func (e *ObjectiveError) Error() string {
	return fmt.Sprintf("slo: objective %q: %s", e.Name, e.Reason)
}

// Report is one objective's evaluation at one tick.
type Report struct {
	// Objective and Target echo the declaration.
	Objective string  `json:"objective"`
	Target    float64 `json:"target"`
	// Ticks counts delta ticks accumulated so far (0 right after the
	// baseline tick — burn rates are meaningless until at least 1).
	Ticks int `json:"ticks"`
	// FastBurn and SlowBurn are the error-budget burn rates over the
	// two windows: (bad / (good+bad)) / (1 - Target). A burn of 1.0
	// spends budget exactly at the sustainable rate; PageBurn-fold
	// faster pages. Windows with no traffic burn 0.
	FastBurn float64 `json:"fast_burn"`
	SlowBurn float64 `json:"slow_burn"`
	// FastGood/FastBad and SlowGood/SlowBad are the raw window tallies
	// behind the burns, for operators auditing the math.
	FastGood int64 `json:"fast_good,omitempty"`
	FastBad  int64 `json:"fast_bad,omitempty"`
	SlowGood int64 `json:"slow_good,omitempty"`
	SlowBad  int64 `json:"slow_bad,omitempty"`
	// Page is true when both windows burn at or above Config.PageBurn.
	Page bool `json:"page"`
}

// sample is one tick's good/bad delta for one objective.
type sample struct{ good, bad int64 }

// Evaluator folds a snapshot stream into per-objective burn reports.
// Not safe for concurrent use; drive it from one goroutine.
type Evaluator struct {
	cfg    Config
	objs   []Objective
	seeded bool
	prev   []sample   // cumulative totals at the previous tick, per objective
	window [][]sample // ring of per-tick deltas, per objective, len ≤ SlowWindow
	ticks  int
}

// NewEvaluator validates the objectives and returns an evaluator.
func NewEvaluator(cfg Config, objs ...Objective) (*Evaluator, error) {
	for _, o := range objs {
		if o.Name == "" {
			return nil, &ObjectiveError{Name: o.Name, Reason: "missing name"}
		}
		if !(o.Target > 0 && o.Target < 1) {
			return nil, &ObjectiveError{Name: o.Name, Reason: fmt.Sprintf("target %g outside (0, 1)", o.Target)}
		}
		switch {
		case o.latency() && (o.Good != "" || o.Bad != ""):
			return nil, &ObjectiveError{Name: o.Name, Reason: "declares both counter and histogram sources"}
		case o.latency() && o.ThresholdNs <= 0:
			return nil, &ObjectiveError{Name: o.Name, Reason: "latency objective needs a positive threshold"}
		case !o.latency() && o.Good == "" && o.Bad == "":
			return nil, &ObjectiveError{Name: o.Name, Reason: "needs good/bad counters or a histogram"}
		}
	}
	return &Evaluator{
		cfg:    cfg.withDefaults(),
		objs:   append([]Objective(nil), objs...),
		prev:   make([]sample, len(objs)),
		window: make([][]sample, len(objs)),
	}, nil
}

// Config returns the evaluator's effective (defaulted) configuration.
func (e *Evaluator) Config() Config { return e.cfg }

// cumulative extracts one objective's cumulative good/bad totals from a
// snapshot. Missing instruments read as zero, so an objective declared
// ahead of traffic simply reports no burn.
func cumulative(o Objective, s *telemetry.Snapshot) sample {
	if s == nil {
		return sample{}
	}
	if !o.latency() {
		return sample{good: s.Counters[o.Good], bad: s.Counters[o.Bad]}
	}
	h := s.Histograms[o.Histogram]
	var good int64
	for i, b := range h.Bounds {
		if b <= o.ThresholdNs && i < len(h.Buckets) {
			good += h.Buckets[i]
		}
	}
	return sample{good: good, bad: h.Count - good}
}

// burn computes the error-budget burn rate over a window tally.
func burn(good, bad int64, target float64) float64 {
	total := good + bad
	if total == 0 {
		return 0
	}
	return (float64(bad) / float64(total)) / (1 - target)
}

// Tick feeds the next cumulative snapshot and returns one report per
// objective, in declaration order. The first call seeds the baseline
// and reports zero burn with Ticks 0. A cumulative total that moved
// backwards (node restart) is clamped: the tick's delta becomes the new
// total, as if the counter restarted from zero at the previous tick.
func (e *Evaluator) Tick(s *telemetry.Snapshot) []Report {
	reports := make([]Report, len(e.objs))
	for i, o := range e.objs {
		cur := cumulative(o, s)
		reports[i] = Report{Objective: o.Name, Target: o.Target}
		if !e.seeded {
			e.prev[i] = cur
			continue
		}
		d := sample{good: cur.good - e.prev[i].good, bad: cur.bad - e.prev[i].bad}
		if d.good < 0 || d.bad < 0 {
			d = cur
		}
		e.prev[i] = cur
		e.window[i] = append(e.window[i], d)
		if n := len(e.window[i]) - e.cfg.SlowWindow; n > 0 {
			e.window[i] = e.window[i][n:]
		}
	}
	if !e.seeded {
		e.seeded = true
		return reports
	}
	e.ticks++
	for i, o := range e.objs {
		r := &reports[i]
		r.Ticks = e.ticks
		w := e.window[i]
		fastStart := len(w) - e.cfg.FastWindow
		if fastStart < 0 {
			fastStart = 0
		}
		for j, d := range w {
			r.SlowGood += d.good
			r.SlowBad += d.bad
			if j >= fastStart {
				r.FastGood += d.good
				r.FastBad += d.bad
			}
		}
		r.FastBurn = burn(r.FastGood, r.FastBad, o.Target)
		r.SlowBurn = burn(r.SlowGood, r.SlowBad, o.Target)
		r.Page = r.FastBurn >= e.cfg.PageBurn && r.SlowBurn >= e.cfg.PageBurn
	}
	return reports
}
