package slo

import (
	"errors"
	"math"
	"reflect"
	"testing"

	"duo/internal/telemetry"
)

func approx(t *testing.T, what string, got, want float64) {
	t.Helper()
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("%s = %g, want %g", what, got, want)
	}
}

func availSnap(good, bad int64) *telemetry.Snapshot {
	return &telemetry.Snapshot{Counters: map[string]int64{
		"node.admission.admitted": good,
		"node.admission.shed":     bad,
	}}
}

// TestShedBurstBurnMath drives the canonical scenario end to end: a
// healthy cluster, then a total shed burst. The fast window trips two
// ticks into the burst; the page fires only once the slow window agrees.
func TestShedBurstBurnMath(t *testing.T) {
	ev, err := NewEvaluator(
		Config{FastWindow: 2, SlowWindow: 4, PageBurn: 10},
		Objective{
			Name:   "availability",
			Good:   "node.admission.admitted",
			Bad:    "node.admission.shed",
			Target: 0.9,
		},
	)
	if err != nil {
		t.Fatal(err)
	}

	// Baseline tick: seeds, no burn data.
	rs := ev.Tick(availSnap(0, 0))
	if len(rs) != 1 || rs[0].Ticks != 0 || rs[0].Page {
		t.Fatalf("baseline report = %+v", rs[0])
	}

	type step struct {
		good, bad          int64 // cumulative totals fed in
		fastBurn, slowBurn float64
		page               bool
	}
	steps := []step{
		{100, 0, 0, 0, false},         // healthy
		{200, 0, 0, 0, false},         // healthy
		{200, 100, 5, 10. / 3, false}, // burst begins: fast sees 100g/100b
		{200, 200, 10, 5, false},      // fast window all-bad, slow lags
		{200, 300, 10, 7.5, false},    // slow window climbing
		{200, 400, 10, 10, true},      // slow window all-bad: page
	}
	for i, s := range steps {
		r := ev.Tick(availSnap(s.good, s.bad))[0]
		if r.Ticks != i+1 {
			t.Errorf("step %d: ticks = %d, want %d", i, r.Ticks, i+1)
		}
		approx(t, "fast burn", r.FastBurn, s.fastBurn)
		approx(t, "slow burn", r.SlowBurn, s.slowBurn)
		if r.Page != s.page {
			t.Errorf("step %d: page = %v, want %v (report %+v)", i, r.Page, s.page, r)
		}
	}
}

// TestLatencyObjectiveBuckets: good = observations in buckets at or
// below the threshold, computed from per-tick bucket deltas.
func TestLatencyObjectiveBuckets(t *testing.T) {
	ev, err := NewEvaluator(
		Config{FastWindow: 2, SlowWindow: 4, PageBurn: 10},
		Objective{Name: "latency", Histogram: "shard.scan_ns", ThresholdNs: 200, Target: 0.9},
	)
	if err != nil {
		t.Fatal(err)
	}
	snap := func(buckets ...int64) *telemetry.Snapshot {
		var count int64
		for _, b := range buckets {
			count += b
		}
		return &telemetry.Snapshot{Histograms: map[string]telemetry.HistogramStats{
			"shard.scan_ns": {
				Count:   count,
				Bounds:  []float64{100, 200, 1000},
				Buckets: buckets,
			},
		}}
	}
	ev.Tick(snap(0, 0, 0, 0))
	// 80 fast (≤200ns), 20 slow: 20% bad against a 10% budget → burn 2.
	r := ev.Tick(snap(50, 30, 15, 5))[0]
	if r.FastGood != 80 || r.FastBad != 20 {
		t.Fatalf("tally = %d good / %d bad, want 80/20", r.FastGood, r.FastBad)
	}
	approx(t, "latency burn", r.FastBurn, 2)
	// Next tick adds 100 all-fast observations; the fast window still
	// holds both ticks, so the bad tally carries over.
	r = ev.Tick(snap(150, 30, 15, 5))[0]
	if r.FastGood != 180 || r.FastBad != 20 {
		t.Fatalf("tally after fast tick = %d/%d, want 180/20", r.FastGood, r.FastBad)
	}
}

// TestCounterResetClamps: a cumulative total moving backwards (node
// restart) becomes that tick's delta instead of poisoning the window
// with negative counts.
func TestCounterResetClamps(t *testing.T) {
	ev, err := NewEvaluator(
		Config{FastWindow: 2, SlowWindow: 2, PageBurn: 10},
		Objective{Name: "a", Good: "g", Bad: "b", Target: 0.5},
	)
	if err != nil {
		t.Fatal(err)
	}
	snap := func(g, b int64) *telemetry.Snapshot {
		return &telemetry.Snapshot{Counters: map[string]int64{"g": g, "b": b}}
	}
	ev.Tick(snap(0, 0))
	ev.Tick(snap(100, 0))
	r := ev.Tick(snap(30, 5))[0] // restart: totals fell
	if r.FastGood != 130 || r.FastBad != 5 {
		t.Errorf("post-reset tally = %d/%d, want 130/5 (clamped delta 30/5)", r.FastGood, r.FastBad)
	}
}

func TestObjectiveValidation(t *testing.T) {
	cases := []Objective{
		{Name: "", Good: "g", Target: 0.9},
		{Name: "bad-target", Good: "g", Target: 1},
		{Name: "bad-target2", Good: "g", Target: 0},
		{Name: "both-shapes", Good: "g", Histogram: "h", ThresholdNs: 1, Target: 0.9},
		{Name: "no-shape", Target: 0.9},
		{Name: "no-threshold", Histogram: "h", Target: 0.9},
	}
	for _, o := range cases {
		_, err := NewEvaluator(Config{}, o)
		var oe *ObjectiveError
		if !errors.As(err, &oe) {
			t.Errorf("objective %+v: err = %v, want *ObjectiveError", o, err)
		}
	}
	if _, err := NewEvaluator(Config{}, Objective{Name: "ok", Good: "g", Target: 0.999}); err != nil {
		t.Errorf("valid objective rejected: %v", err)
	}
}

func TestDefaultsAndDeterminism(t *testing.T) {
	ev, err := NewEvaluator(Config{}, Objective{Name: "a", Good: "g", Bad: "b", Target: 0.999})
	if err != nil {
		t.Fatal(err)
	}
	cfg := ev.Config()
	if cfg.FastWindow != 5 || cfg.SlowWindow != 60 {
		t.Errorf("default windows = %d/%d, want 5/60", cfg.FastWindow, cfg.SlowWindow)
	}
	approx(t, "default page burn", cfg.PageBurn, 14.4)

	// The same snapshot sequence yields identical report sequences.
	mk := func() *Evaluator {
		e, err := NewEvaluator(Config{FastWindow: 3, SlowWindow: 6, PageBurn: 2},
			Objective{Name: "a", Good: "g", Bad: "b", Target: 0.99})
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	e1, e2 := mk(), mk()
	for i := int64(0); i < 10; i++ {
		s := &telemetry.Snapshot{Counters: map[string]int64{"g": i * 50, "b": i * i}}
		r1, r2 := e1.Tick(s), e2.Tick(s)
		if !reflect.DeepEqual(r1, r2) {
			t.Fatalf("tick %d: diverging reports\n%+v\n%+v", i, r1, r2)
		}
	}
}
