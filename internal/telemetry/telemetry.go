// Package telemetry is the service's dependency-free instrumentation
// substrate: a concurrency-safe registry of named counters, gauges,
// fixed-bucket latency histograms (with p50/p95/p99 estimation), bounded
// ring buffers, and a value-type stage stopwatch.
//
// Two properties are load-bearing and tested:
//
//   - Nil safety. A nil *Registry hands out nil instruments, and every
//     method on a nil instrument is a no-op that performs no allocation
//     and reads no clock. Components resolve their instruments once at
//     wiring time and call them unconditionally on the hot path; disabled
//     telemetry therefore costs zero allocations and zero syscalls.
//
//   - Determinism. Telemetry is strictly write-only from the perspective
//     of the attack and retrieval math: timings and counts are recorded,
//     never read back into any computation. Disabling or enabling a
//     registry cannot change a single bit of any result (DESIGN.md §10).
package telemetry

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter. The nil Counter is
// a valid no-op instrument.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n; no-op on nil.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one; no-op on nil.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value (breaker state, active budget,
// queue depth). The nil Gauge is a valid no-op instrument.
type Gauge struct {
	v atomic.Int64
}

// Set stores the gauge value; no-op on nil.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Value returns the current value (0 for nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket histogram over float64 observations. Bucket
// i counts observations ≤ bounds[i]; one implicit overflow bucket counts
// the rest. Writers only touch atomics, so concurrent Observe calls never
// block each other, and a Snapshot taken mid-write always sees an
// internally consistent view (the reported count IS the bucket sum).
//
// Latency histograms record nanoseconds; use Start/Stop for those.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1, last = overflow
	sum    atomic.Uint64  // float64 bits, CAS-accumulated
	min    atomic.Uint64  // float64 bits
	max    atomic.Uint64  // float64 bits
	seeded atomic.Bool    // min/max initialized
}

// newHistogram builds a histogram over ascending bucket upper bounds.
func newHistogram(bounds []float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	return &Histogram{bounds: bs, counts: make([]atomic.Int64, len(bs)+1)}
}

// DurationBounds returns the default latency bucket bounds in nanoseconds:
// 1µs doubling up to ~17s (25 buckets), covering everything from a single
// feature-distance computation to a full SparseTransfer stage.
func DurationBounds() []float64 {
	bounds := make([]float64, 25)
	b := float64(time.Microsecond)
	for i := range bounds {
		bounds[i] = b
		b *= 2
	}
	return bounds
}

// Observe records one value; no-op on nil.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Binary search for the first bound ≥ v.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if h.bounds[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	h.counts[lo].Add(1)
	addFloat(&h.sum, v)
	h.updateMinMax(v)
}

// addFloat CAS-accumulates v into an atomic float64-bits cell.
func addFloat(cell *atomic.Uint64, v float64) {
	for {
		old := cell.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if cell.CompareAndSwap(old, next) {
			return
		}
	}
}

func (h *Histogram) updateMinMax(v float64) {
	if h.seeded.CompareAndSwap(false, true) {
		h.min.Store(math.Float64bits(v))
		h.max.Store(math.Float64bits(v))
		return
	}
	for {
		old := h.min.Load()
		if v >= math.Float64frombits(old) || h.min.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
	for {
		old := h.max.Load()
		if v <= math.Float64frombits(old) || h.max.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
}

// Stopwatch times one stage into a histogram. It is a value type: starting
// and stopping a stopwatch never allocates, and the nil-histogram path
// never reads the clock.
type Stopwatch struct {
	h     *Histogram
	start time.Time
}

// Start begins timing a stage; on a nil histogram it returns an inert
// stopwatch without touching the clock.
func (h *Histogram) Start() Stopwatch {
	if h == nil {
		return Stopwatch{}
	}
	return Stopwatch{h: h, start: time.Now()} //duolint:allow walltime the stopwatch IS the clock boundary; readings are write-only (§10)
}

// Stop records the elapsed nanoseconds; no-op for an inert stopwatch.
func (sw Stopwatch) Stop() {
	if sw.h == nil {
		return
	}
	sw.h.Observe(float64(time.Since(sw.start))) //duolint:allow walltime the stopwatch IS the clock boundary; readings are write-only (§10)
}

// HistogramStats is a point-in-time summary of a histogram. Bounds and
// Buckets expose the raw bucket layout (Buckets has len(Bounds)+1 entries,
// the last being the overflow bucket): they are what makes two snapshots
// of the same histogram shape mergeable bucket-wise (see Snapshot.Merge)
// and what the SLO evaluator counts threshold-good observations from.
type HistogramStats struct {
	Count   int64     `json:"count"`
	Sum     float64   `json:"sum"`
	Min     float64   `json:"min"`
	Max     float64   `json:"max"`
	Mean    float64   `json:"mean"`
	P50     float64   `json:"p50"`
	P95     float64   `json:"p95"`
	P99     float64   `json:"p99"`
	Bounds  []float64 `json:"bounds,omitempty"`
	Buckets []int64   `json:"buckets,omitempty"`
}

// Stats summarizes the histogram. The count is computed as the sum of the
// bucket counts read in one pass, so a snapshot racing concurrent Observe
// calls is always internally consistent: every quantile is derived from
// exactly the observations included in Count. Zero value on nil/empty.
func (h *Histogram) Stats() HistogramStats {
	if h == nil {
		return HistogramStats{}
	}
	counts := make([]int64, len(h.counts))
	var total int64
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
		total += counts[i]
	}
	if total == 0 {
		return HistogramStats{}
	}
	return statsFromBuckets(
		append([]float64(nil), h.bounds...),
		counts,
		math.Float64frombits(h.sum.Load()),
		math.Float64frombits(h.min.Load()),
		math.Float64frombits(h.max.Load()),
	)
}

// statsFromBuckets derives a full HistogramStats from a bucket layout plus
// the exact sum/min/max aggregates. It is the single quantile-estimation
// path for both live histograms (Stats) and merged snapshots
// (Snapshot.Merge), so a fleet-merged p99 is computed by exactly the same
// rule as a node-local one. The passed slices are retained, not copied.
func statsFromBuckets(bounds []float64, buckets []int64, sum, min, max float64) HistogramStats {
	var total int64
	for _, c := range buckets {
		total += c
	}
	if total == 0 {
		return HistogramStats{}
	}
	st := HistogramStats{
		Count:   total,
		Sum:     sum,
		Min:     min,
		Max:     max,
		Bounds:  bounds,
		Buckets: buckets,
	}
	st.Mean = st.Sum / float64(total)
	st.P50 = bucketQuantile(bounds, buckets, total, min, max, 0.50)
	st.P95 = bucketQuantile(bounds, buckets, total, min, max, 0.95)
	st.P99 = bucketQuantile(bounds, buckets, total, min, max, 0.99)
	return st
}

// bucketQuantile estimates the q-quantile from bucket counts by linear
// interpolation inside the containing bucket. The overflow bucket reports
// the observed max (the histogram has no upper bound there), and every
// estimate is clamped to the observed [min, max]: interpolation assumes
// observations spread across the whole bucket, so with few samples the
// raw estimate can drift past values that were actually seen — a p99
// above Max reads as a lie in /metrics.json.
func bucketQuantile(bounds []float64, counts []int64, total int64, min, max, q float64) float64 {
	rank := q * float64(total)
	var cum float64
	for i, c := range counts {
		prev := cum
		cum += float64(c)
		if cum < rank || c == 0 {
			continue
		}
		if i == len(bounds) {
			return max
		}
		lo := 0.0
		if i > 0 {
			lo = bounds[i-1]
		}
		frac := (rank - prev) / float64(c)
		return clampRange(lo+frac*(bounds[i]-lo), min, max)
	}
	return max
}

// clampRange limits a quantile estimate to the observed value range.
func clampRange(v, min, max float64) float64 {
	if v > max {
		return max
	}
	if v < min {
		return min
	}
	return v
}

// Registry is a named collection of instruments. The nil *Registry is the
// disabled state: every lookup returns a nil instrument whose methods are
// no-ops, so call sites never branch on "telemetry enabled?".
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	rings    map[string]*Ring
}

// New returns an empty enabled registry.
func New() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		rings:    make(map[string]*Ring),
	}
}

// Counter returns (creating on first use) the named counter; nil on a nil
// registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = new(Counter)
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating on first use) the named gauge; nil on a nil
// registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = new(Gauge)
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (creating on first use) the named histogram with the
// given bucket bounds; nil on a nil registry. Later callers share the
// first creator's bounds.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Latency returns (creating on first use) a nanosecond latency histogram
// with the default DurationBounds; nil on a nil registry.
func (r *Registry) Latency(name string) *Histogram {
	return r.Histogram(name, DurationBounds())
}

// Ring returns (creating on first use) the named ring buffer with the
// given capacity; nil on a nil registry.
func (r *Registry) Ring(name string, capacity int) *Ring {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	rb, ok := r.rings[name]
	if !ok {
		rb = newRing(capacity)
		r.rings[name] = rb
	}
	return rb
}
