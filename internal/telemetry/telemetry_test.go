package telemetry

import (
	"encoding/json"
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := New()
	c := r.Counter("queries")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if r.Counter("queries") != c {
		t.Error("same name must return the same counter")
	}
	g := r.Gauge("budget")
	g.Set(600)
	if got := g.Value(); got != 600 {
		t.Errorf("gauge = %d, want 600", got)
	}
}

func TestNilInstrumentsAreNoOps(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("x")
	h := r.Latency("x")
	rb := r.Ring("x", 8)
	if c != nil || g != nil || h != nil || rb != nil {
		t.Fatal("nil registry must hand out nil instruments")
	}
	c.Inc()
	c.Add(7)
	g.Set(3)
	h.Observe(1)
	sw := h.Start()
	sw.Stop()
	rb.Push(1)
	if c.Value() != 0 || g.Value() != 0 || h.Stats().Count != 0 || rb.Total() != 0 {
		t.Error("nil instruments must read as zero")
	}
	if s := r.Snapshot(); len(s.Counters) != 0 {
		t.Error("nil registry snapshot must be empty")
	}
	if r.Summary() == "" {
		t.Error("nil registry summary must still render")
	}
}

func TestHistogramStatsAndQuantiles(t *testing.T) {
	h := newHistogram([]float64{10, 20, 40, 80})
	for v := 1.0; v <= 100; v++ {
		h.Observe(v)
	}
	st := h.Stats()
	if st.Count != 100 {
		t.Fatalf("count = %d", st.Count)
	}
	if st.Min != 1 || st.Max != 100 {
		t.Errorf("min/max = %g/%g", st.Min, st.Max)
	}
	if math.Abs(st.Mean-50.5) > 1e-9 {
		t.Errorf("mean = %g", st.Mean)
	}
	// 1..100 uniform: p50 ≈ 50 must land in the (40, 80] bucket, p95 and
	// p99 in the overflow bucket, which reports the observed max.
	if st.P50 <= 40 || st.P50 > 80 {
		t.Errorf("p50 = %g, want in (40, 80]", st.P50)
	}
	if st.P95 != 100 || st.P99 != 100 {
		t.Errorf("p95/p99 = %g/%g, want observed max 100", st.P95, st.P99)
	}
	if got := (&Histogram{}).Stats(); got.Count != 0 {
		t.Errorf("empty histogram stats = %+v", got)
	}
}

func TestHistogramQuantileInterpolation(t *testing.T) {
	h := newHistogram([]float64{100})
	for i := 0; i < 10; i++ {
		h.Observe(50)
	}
	st := h.Stats()
	// All mass in the (0, 100] bucket: p50 interpolates to the bucket
	// midpoint, never outside the bucket.
	if st.P50 <= 0 || st.P50 > 100 {
		t.Errorf("p50 = %g outside its bucket", st.P50)
	}
}

func TestHistogramQuantilesNeverExceedObservedRange(t *testing.T) {
	// Regression: all observations sit at the bottom of a wide bucket.
	// Raw interpolation puts p99 near the bucket's upper bound (≈99 for
	// the (0, 100] bucket here), far above the observed max of 10 — the
	// estimate must be clamped to [Min, Max].
	h := newHistogram([]float64{100})
	for i := 0; i < 50; i++ {
		h.Observe(10)
	}
	st := h.Stats()
	if st.P99 > st.Max {
		t.Errorf("p99 = %g exceeds observed max %g", st.P99, st.Max)
	}
	if st.P95 > st.Max || st.P50 > st.Max {
		t.Errorf("p95/p50 = %g/%g exceed observed max %g", st.P95, st.P50, st.Max)
	}
	if st.P50 < st.Min {
		t.Errorf("p50 = %g below observed min %g", st.P50, st.Min)
	}
	// All-equal observations: every quantile collapses to that value.
	if st.P50 != 10 || st.P95 != 10 || st.P99 != 10 {
		t.Errorf("quantiles = %g/%g/%g, want all 10", st.P50, st.P95, st.P99)
	}
}

func TestStopwatchRecordsElapsed(t *testing.T) {
	r := New()
	h := r.Latency("stage_ns")
	sw := h.Start()
	time.Sleep(2 * time.Millisecond)
	sw.Stop()
	st := h.Stats()
	if st.Count != 1 {
		t.Fatalf("count = %d", st.Count)
	}
	if st.Sum < float64(time.Millisecond) {
		t.Errorf("recorded %v, want ≥ 1ms", time.Duration(st.Sum))
	}
}

func TestRingEvictsOldest(t *testing.T) {
	r := New()
	rb := r.Ring("traj", 4)
	for i := 1; i <= 6; i++ {
		rb.Push(float64(i))
	}
	got := rb.Values()
	want := []float64{3, 4, 5, 6}
	if len(got) != len(want) {
		t.Fatalf("values = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("values = %v, want %v", got, want)
		}
	}
	if rb.Total() != 6 {
		t.Errorf("total = %d", rb.Total())
	}
	if vs := r.Ring("empty", 4).Values(); vs != nil {
		t.Errorf("empty ring values = %v", vs)
	}
}

// TestConcurrentHammer drives every instrument from many goroutines under
// -race and checks the final totals are exact (no lost updates).
func TestConcurrentHammer(t *testing.T) {
	r := New()
	const goroutines = 16
	const perG = 2000
	c := r.Counter("hits")
	g := r.Gauge("state")
	h := r.Histogram("lat", []float64{1, 2, 4, 8})
	rb := r.Ring("traj", 64)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < perG; j++ {
				c.Inc()
				g.Set(int64(i))
				h.Observe(float64(j % 10))
				rb.Push(float64(j))
			}
		}(i)
	}
	wg.Wait()
	if got := c.Value(); got != goroutines*perG {
		t.Errorf("counter = %d, want %d", got, goroutines*perG)
	}
	st := h.Stats()
	if st.Count != goroutines*perG {
		t.Errorf("histogram count = %d, want %d", st.Count, goroutines*perG)
	}
	if rb.Total() != goroutines*perG {
		t.Errorf("ring total = %d, want %d", rb.Total(), goroutines*perG)
	}
}

// TestSnapshotDuringWrites takes snapshots while writers run and asserts
// every snapshot is internally consistent: histogram Count equals the
// bucket sum by construction, counters are monotone, and the mean lies
// within the observed value range.
func TestSnapshotDuringWrites(t *testing.T) {
	r := New()
	c := r.Counter("hits")
	h := r.Histogram("lat", []float64{5, 10})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					c.Inc()
					h.Observe(3)
					h.Observe(7)
				}
			}
		}()
	}
	var prev int64 = -1
	for i := 0; i < 200; i++ {
		s := r.Snapshot()
		if s.Counters["hits"] < prev {
			t.Fatalf("counter went backwards: %d → %d", prev, s.Counters["hits"])
		}
		prev = s.Counters["hits"]
		st := s.Histograms["lat"]
		if st.Count > 0 && (st.Mean < 3-1e-9 || st.Mean > 7+1e-9) {
			t.Fatalf("snapshot mean %g outside observed range [3, 7]", st.Mean)
		}
	}
	close(stop)
	wg.Wait()
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := New()
	r.Counter("a").Add(3)
	r.Gauge("b").Set(-1)
	r.Latency("c_ns").Observe(1500)
	r.Ring("d", 4).Push(0.25)
	raw, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Counters["a"] != 3 || back.Gauges["b"] != -1 {
		t.Errorf("round trip lost values: %+v", back)
	}
	if back.Histograms["c_ns"].Count != 1 {
		t.Errorf("histogram lost: %+v", back.Histograms)
	}
	if len(back.Rings["d"]) != 1 || back.Rings["d"][0] != 0.25 {
		t.Errorf("ring lost: %+v", back.Rings)
	}
}

func TestMetricsHandlerServesJSON(t *testing.T) {
	r := New()
	r.Counter("served").Inc()
	srv := httptest.NewServer(AdminMux(r))
	defer srv.Close()

	for _, path := range []string{"/metrics.json", "/debug/vars", "/debug/pprof/cmdline"} {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if resp.StatusCode != 200 {
			t.Errorf("%s: status %d", path, resp.StatusCode)
		}
		resp.Body.Close()
	}

	resp, err := srv.Client().Get(srv.URL + "/metrics.json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var s Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&s); err != nil {
		t.Fatal(err)
	}
	if s.Counters["served"] != 1 {
		t.Errorf("metrics.json counters = %v", s.Counters)
	}
}

func TestPublishExpvarIsIdempotent(t *testing.T) {
	r := New()
	r.PublishExpvar("duo-test-registry")
	r.PublishExpvar("duo-test-registry") // second call must not panic
}

func TestSummaryRendersEverything(t *testing.T) {
	r := New()
	r.Counter("attack.queries").Add(42)
	r.Gauge("attack.budget").Set(600)
	r.Latency("core.sparse_query_ns").Observe(float64(3 * time.Millisecond))
	r.Ring("attack.trajectory", 8).Push(1.25)
	out := r.Summary()
	for _, want := range []string{"attack.queries", "attack.budget", "core.sparse_query_ns", "attack.trajectory", "42", "600"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}
