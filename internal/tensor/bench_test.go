package tensor

import (
	"math/rand"
	"testing"
)

func benchTensors(n int) (*Tensor, *Tensor) {
	rng := rand.New(rand.NewSource(1))
	return RandNormal(rng, 0, 1, n), RandNormal(rng, 0, 1, n)
}

func BenchmarkAddInPlace(b *testing.B) {
	x, y := benchTensors(12288) // one 16×3×16×16 video
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		x.AddInPlace(y)
	}
}

func BenchmarkMul(b *testing.B) {
	x, y := benchTensors(12288)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = x.Mul(y)
	}
}

func BenchmarkSquaredL2(b *testing.B) {
	x, _ := benchTensors(12288)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = x.SquaredL2()
	}
}

func BenchmarkL20Video(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	x := RandNormal(rng, 0, 1, 16, 3, 16, 16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = x.L20()
	}
}

func BenchmarkMatMul64(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	x := RandNormal(rng, 0, 1, 64, 64)
	y := RandNormal(rng, 0, 1, 64, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = x.MatMul(y)
	}
}

func BenchmarkClampInPlace(b *testing.B) {
	x, _ := benchTensors(12288)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		x.ClampInPlace(-30, 30)
	}
}

func BenchmarkTopK(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	vals := RandNormal(rng, 0, 1, 12288).Data()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = TopK(vals, 1843) // 15% pixel budget
	}
}
