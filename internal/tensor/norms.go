package tensor

import "math"

// Eps is the default tolerance below which an element counts as zero for
// sparsity (L0-style) norms.
const Eps = 1e-12

// L0 returns the number of non-zero elements (‖t‖₀ with tolerance Eps).
func (t *Tensor) L0() int { return t.CountNonZero(Eps) }

// L1 returns the sum of absolute values.
func (t *Tensor) L1() float64 {
	s := 0.0
	for _, v := range t.data {
		s += math.Abs(v)
	}
	return s
}

// L2 returns the Euclidean norm.
func (t *Tensor) L2() float64 { return math.Sqrt(t.SquaredL2()) }

// SquaredL2 returns the squared Euclidean norm.
func (t *Tensor) SquaredL2() float64 {
	s := 0.0
	for _, v := range t.data {
		s += v * v
	}
	return s
}

// LInf returns the maximum absolute element value (‖t‖∞).
func (t *Tensor) LInf() float64 {
	m := 0.0
	for _, v := range t.data {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// L20 returns ‖t‖₂,₀: the number of rows (slices along the first dimension)
// whose L2 norm is non-zero. For a video-shaped perturbation this is the
// number of perturbed frames.
func (t *Tensor) L20() int {
	if t.Rank() == 0 {
		if math.Abs(t.data[0]) > Eps {
			return 1
		}
		return 0
	}
	n := 0
	for i := 0; i < t.shape[0]; i++ {
		if t.Slice(i).SquaredL2() > Eps*Eps {
			n++
		}
	}
	return n
}

// RowL2 returns the L2 norm of each slice along the first dimension.
func (t *Tensor) RowL2() []float64 {
	if t.Rank() == 0 {
		return []float64{math.Abs(t.data[0])}
	}
	out := make([]float64, t.shape[0])
	for i := range out {
		out[i] = t.Slice(i).L2()
	}
	return out
}

// SquaredDistance returns ‖t-u‖₂².
func (t *Tensor) SquaredDistance(u *Tensor) float64 {
	t.mustSameShape(u, "SquaredDistance")
	s := 0.0
	for i, v := range t.data {
		d := v - u.data[i]
		s += d * d
	}
	return s
}

// Distance returns ‖t-u‖₂.
func (t *Tensor) Distance(u *Tensor) float64 { return math.Sqrt(t.SquaredDistance(u)) }

// Normalize returns t scaled to unit L2 norm. A zero tensor is returned
// unchanged.
func (t *Tensor) Normalize() *Tensor {
	n := t.L2()
	if n < Eps {
		return t.Clone()
	}
	return t.Scale(1 / n)
}

// CosineSimilarity returns the cosine of the angle between t and u viewed as
// flat vectors, or 0 if either has zero norm.
func (t *Tensor) CosineSimilarity(u *Tensor) float64 {
	nt, nu := t.L2(), u.L2()
	if nt < Eps || nu < Eps {
		return 0
	}
	return t.Dot(u) / (nt * nu)
}
