package tensor

import (
	"fmt"
	"math"
)

// Add returns t + u elementwise.
func (t *Tensor) Add(u *Tensor) *Tensor {
	t.mustSameShape(u, "Add")
	out := t.Clone()
	for i, v := range u.data {
		out.data[i] += v
	}
	return out
}

// AddInPlace adds u into t elementwise and returns t.
func (t *Tensor) AddInPlace(u *Tensor) *Tensor {
	t.mustSameShape(u, "AddInPlace")
	for i, v := range u.data {
		t.data[i] += v
	}
	return t
}

// Sub returns t - u elementwise.
func (t *Tensor) Sub(u *Tensor) *Tensor {
	t.mustSameShape(u, "Sub")
	out := t.Clone()
	for i, v := range u.data {
		out.data[i] -= v
	}
	return out
}

// Mul returns the Hadamard (elementwise) product t ⊙ u.
func (t *Tensor) Mul(u *Tensor) *Tensor {
	t.mustSameShape(u, "Mul")
	out := t.Clone()
	for i, v := range u.data {
		out.data[i] *= v
	}
	return out
}

// MulInPlace multiplies u into t elementwise and returns t.
func (t *Tensor) MulInPlace(u *Tensor) *Tensor {
	t.mustSameShape(u, "MulInPlace")
	for i, v := range u.data {
		t.data[i] *= v
	}
	return t
}

// Scale returns s * t.
func (t *Tensor) Scale(s float64) *Tensor {
	out := t.Clone()
	for i := range out.data {
		out.data[i] *= s
	}
	return out
}

// ScaleInPlace multiplies every element by s and returns t.
func (t *Tensor) ScaleInPlace(s float64) *Tensor {
	for i := range t.data {
		t.data[i] *= s
	}
	return t
}

// AddScaled adds s*u into t elementwise (t += s*u) and returns t.
func (t *Tensor) AddScaled(s float64, u *Tensor) *Tensor {
	t.mustSameShape(u, "AddScaled")
	for i, v := range u.data {
		t.data[i] += s * v
	}
	return t
}

// Apply returns a new tensor with f applied to every element.
func (t *Tensor) Apply(f func(float64) float64) *Tensor {
	out := t.Clone()
	for i, v := range out.data {
		out.data[i] = f(v)
	}
	return out
}

// ApplyInPlace applies f to every element in place and returns t.
func (t *Tensor) ApplyInPlace(f func(float64) float64) *Tensor {
	for i, v := range t.data {
		t.data[i] = f(v)
	}
	return t
}

// Clamp returns a copy with every element limited to [lo, hi].
func (t *Tensor) Clamp(lo, hi float64) *Tensor {
	return t.Apply(func(v float64) float64 { return math.Max(lo, math.Min(hi, v)) })
}

// ClampInPlace limits every element to [lo, hi] in place and returns t.
func (t *Tensor) ClampInPlace(lo, hi float64) *Tensor {
	return t.ApplyInPlace(func(v float64) float64 { return math.Max(lo, math.Min(hi, v)) })
}

// Sum returns the sum of all elements.
func (t *Tensor) Sum() float64 {
	s := 0.0
	for _, v := range t.data {
		s += v
	}
	return s
}

// Mean returns the arithmetic mean of all elements.
func (t *Tensor) Mean() float64 { return t.Sum() / float64(len(t.data)) }

// Max returns the maximum element value.
func (t *Tensor) Max() float64 {
	m := math.Inf(-1)
	for _, v := range t.data {
		if v > m {
			m = v
		}
	}
	return m
}

// Min returns the minimum element value.
func (t *Tensor) Min() float64 {
	m := math.Inf(1)
	for _, v := range t.data {
		if v < m {
			m = v
		}
	}
	return m
}

// Dot returns the inner product of t and u viewed as flat vectors.
func (t *Tensor) Dot(u *Tensor) float64 {
	if len(t.data) != len(u.data) {
		panic(fmt.Sprintf("tensor: Dot: length mismatch %d vs %d", len(t.data), len(u.data)))
	}
	s := 0.0
	for i, v := range t.data {
		s += v * u.data[i]
	}
	return s
}

// MatMul returns the matrix product of two rank-2 tensors: (a×b)·(b×c)=(a×c).
func (t *Tensor) MatMul(u *Tensor) *Tensor {
	if t.Rank() != 2 || u.Rank() != 2 {
		panic(fmt.Sprintf("tensor: MatMul requires rank-2 operands, got %v and %v", t.shape, u.shape))
	}
	a, b := t.shape[0], t.shape[1]
	b2, c := u.shape[0], u.shape[1]
	if b != b2 {
		panic(fmt.Sprintf("tensor: MatMul: inner dims differ: %v · %v", t.shape, u.shape))
	}
	out := New(a, c)
	for i := 0; i < a; i++ {
		ti := t.data[i*b : (i+1)*b]
		oi := out.data[i*c : (i+1)*c]
		for k := 0; k < b; k++ {
			tv := ti[k]
			if tv == 0 {
				continue
			}
			uk := u.data[k*c : (k+1)*c]
			for j := 0; j < c; j++ {
				oi[j] += tv * uk[j]
			}
		}
	}
	return out
}

// MatVec returns the matrix-vector product of a rank-2 tensor (a×b) with a
// rank-1 tensor (b), producing a rank-1 tensor (a).
func (t *Tensor) MatVec(v *Tensor) *Tensor {
	if t.Rank() != 2 || v.Rank() != 1 {
		panic(fmt.Sprintf("tensor: MatVec requires (2,1)-rank operands, got %v and %v", t.shape, v.shape))
	}
	a, b := t.shape[0], t.shape[1]
	if b != v.shape[0] {
		panic(fmt.Sprintf("tensor: MatVec: dims differ: %v · %v", t.shape, v.shape))
	}
	out := New(a)
	for i := 0; i < a; i++ {
		row := t.data[i*b : (i+1)*b]
		s := 0.0
		for k, rv := range row {
			s += rv * v.data[k]
		}
		out.data[i] = s
	}
	return out
}

// Transpose returns the transpose of a rank-2 tensor.
func (t *Tensor) Transpose() *Tensor {
	if t.Rank() != 2 {
		panic(fmt.Sprintf("tensor: Transpose requires rank 2, got %v", t.shape))
	}
	a, b := t.shape[0], t.shape[1]
	out := New(b, a)
	for i := 0; i < a; i++ {
		for j := 0; j < b; j++ {
			out.data[j*a+i] = t.data[i*b+j]
		}
	}
	return out
}

// Equal reports whether t and u have the same shape and all elements are
// within tol of each other.
func (t *Tensor) Equal(u *Tensor, tol float64) bool {
	if !t.SameShape(u) {
		return false
	}
	for i, v := range t.data {
		if math.Abs(v-u.data[i]) > tol {
			return false
		}
	}
	return true
}

// CountNonZero returns the number of elements with |v| > eps.
func (t *Tensor) CountNonZero(eps float64) int {
	n := 0
	for _, v := range t.data {
		if math.Abs(v) > eps {
			n++
		}
	}
	return n
}
