package tensor

import "math/rand"

// FillUniform fills t with independent samples from U[lo, hi).
func (t *Tensor) FillUniform(rng *rand.Rand, lo, hi float64) *Tensor {
	for i := range t.data {
		t.data[i] = lo + rng.Float64()*(hi-lo)
	}
	return t
}

// FillNormal fills t with independent samples from N(mean, std²).
func (t *Tensor) FillNormal(rng *rand.Rand, mean, std float64) *Tensor {
	for i := range t.data {
		t.data[i] = mean + rng.NormFloat64()*std
	}
	return t
}

// FillRademacher fills t with independent ±v values (equal probability).
func (t *Tensor) FillRademacher(rng *rand.Rand, v float64) *Tensor {
	for i := range t.data {
		if rng.Intn(2) == 0 {
			t.data[i] = v
		} else {
			t.data[i] = -v
		}
	}
	return t
}

// RandUniform returns a new tensor of the given shape filled from U[lo, hi).
func RandUniform(rng *rand.Rand, lo, hi float64, shape ...int) *Tensor {
	return New(shape...).FillUniform(rng, lo, hi)
}

// RandNormal returns a new tensor of the given shape filled from N(mean, std²).
func RandNormal(rng *rand.Rand, mean, std float64, shape ...int) *Tensor {
	return New(shape...).FillNormal(rng, mean, std)
}
