// Package tensor implements a dense, row-major, float64 N-dimensional
// tensor. It is the numeric substrate for every model and attack in this
// repository.
//
// Shape-mismatch and out-of-range conditions are programmer errors and
// panic with a descriptive message, mirroring the behaviour of Go's own
// slice indexing and of gonum's mat package.
package tensor

import (
	"fmt"
	"strings"
)

// Tensor is a dense row-major N-dimensional array of float64.
// The zero value is not usable; construct with New or From.
type Tensor struct {
	shape   []int
	strides []int
	data    []float64
}

// New returns a zero-filled tensor with the given shape. A tensor with no
// dimensions is a scalar holding one element.
func New(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d <= 0 {
			panic(fmt.Sprintf("tensor: non-positive dimension %d in shape %v", d, shape))
		}
		n *= d
	}
	t := &Tensor{
		shape:   append([]int(nil), shape...),
		strides: stridesFor(shape),
		data:    make([]float64, n),
	}
	return t
}

// From returns a tensor with the given shape backed by a copy of data.
func From(data []float64, shape ...int) *Tensor {
	t := New(shape...)
	if len(data) != len(t.data) {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v (want %d)",
			len(data), shape, len(t.data)))
	}
	copy(t.data, data)
	return t
}

// Wrap returns a tensor with the given shape that aliases data (no copy).
// Mutating the tensor mutates data and vice versa.
func Wrap(data []float64, shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d <= 0 {
			panic(fmt.Sprintf("tensor: non-positive dimension %d in shape %v", d, shape))
		}
		n *= d
	}
	if len(data) != n {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v (want %d)",
			len(data), shape, n))
	}
	return &Tensor{shape: append([]int(nil), shape...), strides: stridesFor(shape), data: data}
}

// Scalar returns a 0-dimensional tensor holding v.
func Scalar(v float64) *Tensor {
	t := New()
	t.data[0] = v
	return t
}

func stridesFor(shape []int) []int {
	s := make([]int, len(shape))
	acc := 1
	for i := len(shape) - 1; i >= 0; i-- {
		s[i] = acc
		acc *= shape[i]
	}
	return s
}

// Shape returns a copy of the tensor's shape.
func (t *Tensor) Shape() []int { return append([]int(nil), t.shape...) }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.shape[i] }

// Rank returns the number of dimensions.
func (t *Tensor) Rank() int { return len(t.shape) }

// Len returns the total number of elements.
func (t *Tensor) Len() int { return len(t.data) }

// Data returns the underlying storage. The slice aliases the tensor: writes
// through it are visible to the tensor. Callers that need isolation must
// copy.
func (t *Tensor) Data() []float64 { return t.data }

// SameShape reports whether t and u have identical shapes.
func (t *Tensor) SameShape(u *Tensor) bool {
	if len(t.shape) != len(u.shape) {
		return false
	}
	for i := range t.shape {
		if t.shape[i] != u.shape[i] {
			return false
		}
	}
	return true
}

func (t *Tensor) mustSameShape(u *Tensor, op string) {
	if !t.SameShape(u) {
		panic(fmt.Sprintf("tensor: %s: shape mismatch %v vs %v", op, t.shape, u.shape))
	}
}

// Offset returns the flat index of the element at the given multi-index.
func (t *Tensor) Offset(idx ...int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: index rank %d does not match tensor rank %d", len(idx), len(t.shape)))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of range for shape %v", idx, t.shape))
		}
		off += x * t.strides[i]
	}
	return off
}

// At returns the element at the given multi-index.
func (t *Tensor) At(idx ...int) float64 { return t.data[t.Offset(idx...)] }

// Set stores v at the given multi-index.
func (t *Tensor) Set(v float64, idx ...int) { t.data[t.Offset(idx...)] = v }

// Clone returns a deep copy of t.
func (t *Tensor) Clone() *Tensor {
	c := &Tensor{
		shape:   append([]int(nil), t.shape...),
		strides: append([]int(nil), t.strides...),
		data:    make([]float64, len(t.data)),
	}
	copy(c.data, t.data)
	return c
}

// CopyFrom copies u's elements into t. Shapes must match.
func (t *Tensor) CopyFrom(u *Tensor) {
	t.mustSameShape(u, "CopyFrom")
	copy(t.data, u.data)
}

// Reshape returns a view of t with a new shape covering the same elements.
// The element count must be unchanged. The view aliases t's storage.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(t.data) {
		panic(fmt.Sprintf("tensor: cannot reshape %v (%d elems) to %v (%d elems)",
			t.shape, len(t.data), shape, n))
	}
	return &Tensor{shape: append([]int(nil), shape...), strides: stridesFor(shape), data: t.data}
}

// Flatten returns a rank-1 view of t aliasing its storage.
func (t *Tensor) Flatten() *Tensor { return t.Reshape(len(t.data)) }

// Zero sets every element to 0.
func (t *Tensor) Zero() {
	for i := range t.data {
		t.data[i] = 0
	}
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float64) {
	for i := range t.data {
		t.data[i] = v
	}
}

// Slice returns a view of the sub-tensor at index i along the first
// dimension (e.g. one frame of a video). The view aliases t's storage.
func (t *Tensor) Slice(i int) *Tensor {
	if len(t.shape) == 0 {
		panic("tensor: Slice of scalar")
	}
	if i < 0 || i >= t.shape[0] {
		panic(fmt.Sprintf("tensor: Slice index %d out of range for dim %d", i, t.shape[0]))
	}
	sub := t.strides[0]
	return &Tensor{
		shape:   append([]int(nil), t.shape[1:]...),
		strides: append([]int(nil), t.strides[1:]...),
		data:    t.data[i*sub : (i+1)*sub],
	}
}

// String renders small tensors fully and large ones as a summary.
func (t *Tensor) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Tensor%v", t.shape)
	if len(t.data) <= 16 {
		fmt.Fprintf(&b, "%v", t.data)
	} else {
		fmt.Fprintf(&b, "[%g %g ... %g] (%d elems)", t.data[0], t.data[1], t.data[len(t.data)-1], len(t.data))
	}
	return b.String()
}
