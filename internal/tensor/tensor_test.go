package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewShapeAndLen(t *testing.T) {
	cases := []struct {
		shape []int
		want  int
	}{
		{[]int{}, 1},
		{[]int{3}, 3},
		{[]int{2, 3}, 6},
		{[]int{4, 3, 2, 5}, 120},
	}
	for _, c := range cases {
		tt := New(c.shape...)
		if tt.Len() != c.want {
			t.Errorf("New(%v).Len() = %d, want %d", c.shape, tt.Len(), c.want)
		}
		if tt.Rank() != len(c.shape) {
			t.Errorf("New(%v).Rank() = %d, want %d", c.shape, tt.Rank(), len(c.shape))
		}
	}
}

func TestNewPanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(2, 0) did not panic")
		}
	}()
	New(2, 0)
}

func TestAtSetRoundTrip(t *testing.T) {
	tt := New(2, 3, 4)
	tt.Set(7.5, 1, 2, 3)
	if got := tt.At(1, 2, 3); got != 7.5 {
		t.Errorf("At(1,2,3) = %g, want 7.5", got)
	}
	if got := tt.At(0, 0, 0); got != 0 {
		t.Errorf("At(0,0,0) = %g, want 0", got)
	}
}

func TestOffsetRowMajor(t *testing.T) {
	tt := New(2, 3)
	// Row-major: (i,j) -> i*3 + j.
	if off := tt.Offset(1, 2); off != 5 {
		t.Errorf("Offset(1,2) = %d, want 5", off)
	}
}

func TestAtPanicsOutOfRange(t *testing.T) {
	tt := New(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("At out of range did not panic")
		}
	}()
	tt.At(2, 0)
}

func TestFromAndData(t *testing.T) {
	tt := From([]float64{1, 2, 3, 4}, 2, 2)
	if tt.At(1, 1) != 4 {
		t.Errorf("At(1,1) = %g, want 4", tt.At(1, 1))
	}
	// From copies: mutating original slice must not affect tensor.
	src := []float64{9, 9}
	u := From(src, 2)
	src[0] = 0
	if u.At(0) != 9 {
		t.Error("From did not copy its input")
	}
	// Wrap aliases.
	w := Wrap(src, 2)
	src[1] = 42
	if w.At(1) != 42 {
		t.Error("Wrap did not alias its input")
	}
}

func TestCloneIsDeep(t *testing.T) {
	a := From([]float64{1, 2, 3}, 3)
	b := a.Clone()
	b.Set(99, 0)
	if a.At(0) != 1 {
		t.Error("Clone shares storage with original")
	}
}

func TestReshapeAliases(t *testing.T) {
	a := From([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	b := a.Reshape(3, 2)
	b.Set(42, 0, 0)
	if a.At(0, 0) != 42 {
		t.Error("Reshape does not alias storage")
	}
	if b.At(2, 1) != 6 {
		t.Errorf("Reshape(3,2).At(2,1) = %g, want 6", b.At(2, 1))
	}
}

func TestSliceViewsFrame(t *testing.T) {
	// A "video" with 2 frames of 2x2.
	v := From([]float64{1, 2, 3, 4, 5, 6, 7, 8}, 2, 2, 2)
	f1 := v.Slice(1)
	if !f1.Equal(From([]float64{5, 6, 7, 8}, 2, 2), 0) {
		t.Errorf("Slice(1) = %v", f1)
	}
	f1.Set(0, 0, 0)
	if v.At(1, 0, 0) != 0 {
		t.Error("Slice does not alias parent storage")
	}
}

func TestAddSubMulScale(t *testing.T) {
	a := From([]float64{1, 2, 3, 4}, 2, 2)
	b := From([]float64{4, 3, 2, 1}, 2, 2)
	if got := a.Add(b); !got.Equal(From([]float64{5, 5, 5, 5}, 2, 2), 0) {
		t.Errorf("Add = %v", got)
	}
	if got := a.Sub(b); !got.Equal(From([]float64{-3, -1, 1, 3}, 2, 2), 0) {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Mul(b); !got.Equal(From([]float64{4, 6, 6, 4}, 2, 2), 0) {
		t.Errorf("Mul = %v", got)
	}
	if got := a.Scale(2); !got.Equal(From([]float64{2, 4, 6, 8}, 2, 2), 0) {
		t.Errorf("Scale = %v", got)
	}
}

func TestAddScaled(t *testing.T) {
	a := From([]float64{1, 1}, 2)
	b := From([]float64{2, 4}, 2)
	a.AddScaled(0.5, b)
	if !a.Equal(From([]float64{2, 3}, 2), 1e-15) {
		t.Errorf("AddScaled = %v", a)
	}
}

func TestClamp(t *testing.T) {
	a := From([]float64{-5, 0, 5}, 3)
	got := a.Clamp(-1, 1)
	if !got.Equal(From([]float64{-1, 0, 1}, 3), 0) {
		t.Errorf("Clamp = %v", got)
	}
	if a.At(0) != -5 {
		t.Error("Clamp mutated receiver")
	}
	a.ClampInPlace(-1, 1)
	if a.At(0) != -1 {
		t.Error("ClampInPlace did not mutate receiver")
	}
}

func TestReductions(t *testing.T) {
	a := From([]float64{1, -2, 3, -4}, 4)
	if got := a.Sum(); got != -2 {
		t.Errorf("Sum = %g", got)
	}
	if got := a.Mean(); got != -0.5 {
		t.Errorf("Mean = %g", got)
	}
	if got := a.Max(); got != 3 {
		t.Errorf("Max = %g", got)
	}
	if got := a.Min(); got != -4 {
		t.Errorf("Min = %g", got)
	}
	if got := a.L1(); got != 10 {
		t.Errorf("L1 = %g", got)
	}
	if got := a.LInf(); got != 4 {
		t.Errorf("LInf = %g", got)
	}
	if got := a.SquaredL2(); got != 30 {
		t.Errorf("SquaredL2 = %g", got)
	}
	if got := a.L2(); math.Abs(got-math.Sqrt(30)) > 1e-12 {
		t.Errorf("L2 = %g", got)
	}
}

func TestL0AndL20(t *testing.T) {
	// 3 frames of 2 elems; frame 1 all zero.
	a := From([]float64{1, 0, 0, 0, 0, 2}, 3, 2)
	if got := a.L0(); got != 2 {
		t.Errorf("L0 = %d, want 2", got)
	}
	if got := a.L20(); got != 2 {
		t.Errorf("L20 = %d, want 2 (frames 0 and 2)", got)
	}
}

func TestMatMul(t *testing.T) {
	a := From([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	b := From([]float64{7, 8, 9, 10, 11, 12}, 3, 2)
	got := a.MatMul(b)
	want := From([]float64{58, 64, 139, 154}, 2, 2)
	if !got.Equal(want, 1e-12) {
		t.Errorf("MatMul = %v, want %v", got, want)
	}
}

func TestMatVec(t *testing.T) {
	a := From([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	v := From([]float64{1, 0, -1}, 3)
	got := a.MatVec(v)
	want := From([]float64{-2, -2}, 2)
	if !got.Equal(want, 1e-12) {
		t.Errorf("MatVec = %v, want %v", got, want)
	}
}

func TestTranspose(t *testing.T) {
	a := From([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	got := a.Transpose()
	want := From([]float64{1, 4, 2, 5, 3, 6}, 3, 2)
	if !got.Equal(want, 0) {
		t.Errorf("Transpose = %v", got)
	}
}

func TestDistanceAndCosine(t *testing.T) {
	a := From([]float64{1, 0}, 2)
	b := From([]float64{0, 1}, 2)
	if got := a.Distance(b); math.Abs(got-math.Sqrt2) > 1e-12 {
		t.Errorf("Distance = %g", got)
	}
	if got := a.CosineSimilarity(b); got != 0 {
		t.Errorf("CosineSimilarity orthogonal = %g", got)
	}
	if got := a.CosineSimilarity(a.Scale(3)); math.Abs(got-1) > 1e-12 {
		t.Errorf("CosineSimilarity parallel = %g", got)
	}
}

func TestNormalize(t *testing.T) {
	a := From([]float64{3, 4}, 2)
	n := a.Normalize()
	if math.Abs(n.L2()-1) > 1e-12 {
		t.Errorf("Normalize L2 = %g", n.L2())
	}
	z := New(2)
	if got := z.Normalize(); got.L2() != 0 {
		t.Errorf("Normalize zero = %v", got)
	}
}

func TestArgsortAndTopK(t *testing.T) {
	vals := []float64{3, 1, 4, 1, 5}
	desc := ArgsortDesc(vals)
	wantDesc := []int{4, 2, 0, 1, 3}
	for i := range wantDesc {
		if desc[i] != wantDesc[i] {
			t.Fatalf("ArgsortDesc = %v, want %v", desc, wantDesc)
		}
	}
	top2 := TopK(vals, 2)
	if top2[0] != 4 || top2[1] != 2 {
		t.Errorf("TopK = %v", top2)
	}
	bot2 := BottomK(vals, 2)
	if bot2[0] != 1 || bot2[1] != 3 {
		t.Errorf("BottomK = %v", bot2)
	}
	if got := TopK(vals, 100); len(got) != 5 {
		t.Errorf("TopK clamp: len = %d", len(got))
	}
}

func TestFillRandomDeterminism(t *testing.T) {
	a := New(100).FillNormal(rand.New(rand.NewSource(7)), 0, 1)
	b := New(100).FillNormal(rand.New(rand.NewSource(7)), 0, 1)
	if !a.Equal(b, 0) {
		t.Error("same seed produced different tensors")
	}
}

func TestFillRademacher(t *testing.T) {
	a := New(1000).FillRademacher(rand.New(rand.NewSource(1)), 0.5)
	for _, v := range a.Data() {
		if v != 0.5 && v != -0.5 {
			t.Fatalf("Rademacher produced %g", v)
		}
	}
}

// --- property-based tests -------------------------------------------------

func tensorFromVals(vals []float64) *Tensor {
	if len(vals) == 0 {
		vals = []float64{0}
	}
	clean := make([]float64, len(vals))
	for i, v := range vals {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			v = 0
		}
		// Keep magnitudes sane so squared sums don't overflow.
		clean[i] = math.Mod(v, 1e6)
	}
	return From(clean, len(clean))
}

func TestPropAddCommutative(t *testing.T) {
	f := func(vals []float64) bool {
		a := tensorFromVals(vals)
		b := a.Scale(0.5)
		return a.Add(b).Equal(b.Add(a), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropSubSelfIsZero(t *testing.T) {
	f := func(vals []float64) bool {
		a := tensorFromVals(vals)
		return a.Sub(a).L2() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropTriangleInequality(t *testing.T) {
	f := func(vals []float64) bool {
		a := tensorFromVals(vals)
		b := a.Scale(-1)
		c := a.Scale(0.3)
		return a.Distance(b) <= a.Distance(c)+c.Distance(b)+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropLInfBoundsAfterClamp(t *testing.T) {
	f := func(vals []float64, bound float64) bool {
		a := tensorFromVals(vals)
		tau := math.Abs(math.Mod(bound, 100)) + 0.1
		return a.Clamp(-tau, tau).LInf() <= tau+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropL0AtMostLen(t *testing.T) {
	f := func(vals []float64) bool {
		a := tensorFromVals(vals)
		l0 := a.L0()
		return l0 >= 0 && l0 <= a.Len()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropTransposeInvolution(t *testing.T) {
	f := func(vals []float64) bool {
		a := tensorFromVals(vals)
		n := a.Len()
		rows := 1
		for r := 2; r*r <= n; r++ {
			if n%r == 0 {
				rows = r
			}
		}
		m := a.Reshape(rows, n/rows)
		return m.Transpose().Transpose().Equal(m, 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropNormalizeUnit(t *testing.T) {
	f := func(vals []float64) bool {
		a := tensorFromVals(vals)
		n := a.Normalize().L2()
		return n == 0 || math.Abs(n-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
