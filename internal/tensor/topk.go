package tensor

import "sort"

// ArgsortDesc returns the indices that would sort vals in descending order.
// The input is not modified. Ties keep ascending index order, which makes
// the result deterministic.
func ArgsortDesc(vals []float64) []int {
	idx := make([]int, len(vals))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return vals[idx[a]] > vals[idx[b]] })
	return idx
}

// ArgsortAsc returns the indices that would sort vals in ascending order.
func ArgsortAsc(vals []float64) []int {
	idx := make([]int, len(vals))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return vals[idx[a]] < vals[idx[b]] })
	return idx
}

// TopK returns the indices of the k largest values in vals, in descending
// value order. k is clamped to len(vals).
func TopK(vals []float64, k int) []int {
	if k > len(vals) {
		k = len(vals)
	}
	if k < 0 {
		k = 0
	}
	return ArgsortDesc(vals)[:k]
}

// BottomK returns the indices of the k smallest values in vals, in ascending
// value order. k is clamped to len(vals).
func BottomK(vals []float64, k int) []int {
	if k > len(vals) {
		k = len(vals)
	}
	if k < 0 {
		k = 0
	}
	return ArgsortAsc(vals)[:k]
}
