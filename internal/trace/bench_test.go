package trace

import "testing"

// TestDisabledTracerAllocatesNothing pins the disabled-path cost contract:
// with a nil *Tracer every Start/attr/End call on the hot path must be a
// free no-op. Enforced by the zero-alloc CI step alongside the nil
// telemetry Registry pins (the test name matches that step's -run regex).
func TestDisabledTracerAllocatesNothing(t *testing.T) {
	var tr *Tracer
	allocs := testing.AllocsPerRun(1000, func() {
		sp := tr.Start(nil, "round")
		sp.SetInt("queries", 1)
		sp.SetFloat("T", 0.25)
		sp.SetStr("outcome", "ok")
		child := tr.StartCtx(sp.Ctx(), "retrieve")
		child.SetInt("node", 0)
		child.End()
		sp.End()
	})
	if allocs != 0 {
		t.Fatalf("disabled tracer allocated %v times per op, want 0", allocs)
	}
}

func BenchmarkDisabledSpan(b *testing.B) {
	var tr *Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := tr.Start(nil, "round")
		sp.SetInt("queries", 1)
		sp.End()
	}
}

func BenchmarkEnabledSpan(b *testing.B) {
	tr := New("bench")
	root := tr.Start(nil, "root")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp := tr.Start(root, "round")
		sp.SetInt("queries", 1)
		sp.End()
	}
}
