package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
)

// Record is the JSONL export form of one finished span. Attribute values
// are int64, float64, or string at write time; after a ReadJSONL round
// trip, numeric values surface as float64 (encoding/json's number type) —
// use Int/Float to read them without caring which.
type Record struct {
	Trace       string         `json:"trace"`
	ID          uint64         `json:"id"`
	Parent      uint64         `json:"parent,omitempty"`
	RemoteTrace string         `json:"remote_trace,omitempty"`
	RemoteSpan  uint64         `json:"remote_span,omitempty"`
	Name        string         `json:"name"`
	Start       int64          `json:"start"`
	End         int64          `json:"end"`
	Attrs       map[string]any `json:"attrs,omitempty"`
}

// Int reads an integer attribute, tolerating the float64 that
// encoding/json produces on the read side.
func (r Record) Int(key string) (int64, bool) {
	switch v := r.Attrs[key].(type) {
	case int64:
		return v, true
	case float64:
		return int64(v), true
	}
	return 0, false
}

// Float reads a float attribute (or an integer one, widened).
func (r Record) Float(key string) (float64, bool) {
	switch v := r.Attrs[key].(type) {
	case float64:
		return v, true
	case int64:
		return float64(v), true
	}
	return 0, false
}

// Str reads a string attribute.
func (r Record) Str(key string) (string, bool) {
	v, ok := r.Attrs[key].(string)
	return v, ok
}

// Records returns a snapshot of the finished spans sorted by span ID
// (creation order), the canonical export ordering. Nil tracer → nil.
func (t *Tracer) Records() []Record {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]Record, len(t.records))
	copy(out, t.records)
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// WriteJSONL writes the finished spans as one JSON object per line, in
// span-ID order. With the default logical clock the bytes are a pure
// function of the instrumented code path: no wall-clock reading, no map
// iteration order (encoding/json sorts attribute keys), no goroutine
// scheduling influence. Nil tracer writes nothing.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	return WriteRecords(w, t.Records())
}

// WriteRecords writes records as JSONL in the order given.
func WriteRecords(w io.Writer, recs []Record) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, r := range recs {
		if err := enc.Encode(r); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadJSONL parses a trace file written by WriteJSONL. Blank lines are
// skipped; any other malformed line is an error with its line number.
func ReadJSONL(r io.Reader) ([]Record, error) {
	var recs []Record
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(b, &rec); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	return recs, nil
}

// Handler serves the tracer's finished spans as JSONL — mounted at
// /trace.jsonl on retrievald's admin mux. Safe while spans are still
// being recorded: only spans already Ended appear, snapshotted under the
// tracer lock.
func Handler(t *Tracer) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/jsonl")
		_ = t.WriteJSONL(w)
	})
}
