package trace

import (
	"context"
	"runtime/pprof"
	"strconv"
)

// WithStageLabels runs f with pprof labels duo.stage=stage and
// duo.round=round attached to the current goroutine — and, because label
// sets are inherited, to every goroutine f spawns, including the
// parallel.For workers. CPU profiles captured via the admin endpoint can
// then be filtered per stage and per round (`go tool pprof
// -tagfocus duo.stage=sparsequery`), which is how profile time is
// attributed back to the span tree. Labels are profiling metadata only:
// they never enter the trace output, so they cannot perturb determinism.
func WithStageLabels(stage string, round int, f func()) {
	labels := pprof.Labels("duo.stage", stage, "duo.round", strconv.Itoa(round))
	pprof.Do(context.Background(), labels, func(context.Context) { f() })
}
