// Package trace is the attack pipeline's deterministic span tracer: a
// write-only tree of named spans — attack.run → round → {sparsetransfer
// stages, sparsequery steps} → retrieve → node — with typed attributes
// (queries billed, 𝕋 values, candidate pixels, node outcomes) that the
// cmd/duotrace CLI rolls up into per-stage/per-round cost attributions.
//
// Three properties are load-bearing and tested:
//
//   - Nil safety. A nil *Tracer hands out nil *Spans, and every method on
//     a nil span is a no-op that performs no allocation. Components call
//     Start/SetInt/End unconditionally on the hot path; disabled tracing
//     costs zero allocations (pinned by the zero-alloc CI step, exactly
//     like the nil telemetry Registry).
//
//   - Determinism. The default clock is a logical step counter: every
//     Start and End consumes one tick, so a trace contains no wall-clock
//     reading and two identical runs produce bitwise-identical JSONL.
//     Callers that want real durations inject a clock with SetClock (and
//     own the resulting nondeterminism). Tracing is strictly write-only:
//     nothing recorded here is ever read back into attack or retrieval
//     math, so enabling a tracer cannot change any result.
//
//   - Ordered concurrency. Span IDs and ticks are assigned at Start in
//     call order, and a span is published to the export set only by End,
//     under the tracer lock. The contract for parallel sections (the
//     cluster's node fan-out) is: Start and End run on the orchestration
//     goroutine, in a deterministic order, before and after the parallel
//     region; worker goroutines may only set attributes on their own
//     span. Under that discipline the exported tree is identical at every
//     worker count.
package trace

import "sync"

// Context identifies a span for cross-process propagation: it is the
// payload carried over the retrieval wire protocol so a data node's
// server-side spans parent correctly under the coordinator's. All fields
// are exported for encoding/gob; the zero Context means "no active span"
// and is omitted from the wire entirely.
type Context struct {
	// TraceID names the originating tracer's trace.
	TraceID string
	// SpanID is the active span's ID (IDs start at 1; 0 = none).
	SpanID uint64
}

// Valid reports whether the context names an actual span.
func (c Context) Valid() bool { return c.SpanID != 0 }

// attrKind discriminates the typed attribute value.
type attrKind uint8

const (
	attrInt attrKind = iota
	attrFloat
	attrStr
)

// attr is one typed span attribute. Attributes keep their insertion order
// (no maps anywhere near the export path), which is part of what makes
// trace output byte-stable.
type attr struct {
	key  string
	kind attrKind
	i    int64
	f    float64
	s    string
}

// Span is one node of the trace tree. A span is owned by the goroutine
// that starts it: attribute writes are not synchronized, so only that
// goroutine may touch the span until End, which publishes it to the
// tracer and after which the span must not be used again.
type Span struct {
	tr     *Tracer
	id     uint64
	parent uint64
	remote Context // remote parent, for server-side spans
	name   string
	start  int64
	attrs  []attr
}

// ID returns the span's ID (0 on nil).
func (s *Span) ID() uint64 {
	if s == nil {
		return 0
	}
	return s.id
}

// Ctx returns the span's propagation context (zero on nil), safe to read
// from worker goroutines.
func (s *Span) Ctx() Context {
	if s == nil {
		return Context{}
	}
	return Context{TraceID: s.tr.traceID, SpanID: s.id}
}

// SetInt records an integer attribute; no-op on nil.
func (s *Span) SetInt(key string, v int64) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, attr{key: key, kind: attrInt, i: v})
}

// SetFloat records a float attribute; no-op on nil.
func (s *Span) SetFloat(key string, v float64) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, attr{key: key, kind: attrFloat, f: v})
}

// SetStr records a string attribute; no-op on nil.
func (s *Span) SetStr(key, v string) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, attr{key: key, kind: attrStr, s: v})
}

// End stamps the span's end tick and publishes it to the tracer's export
// set; no-op on nil. End must run on the goroutine that owns the span,
// and the span must not be touched afterwards.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.tr.finish(s)
}

// Tracer collects one run's span tree. The nil *Tracer is the disabled
// state: Start returns nil and every span method is a free no-op.
type Tracer struct {
	traceID string
	clock   func() int64 // nil = logical step counter

	mu      sync.Mutex
	step    int64
	seq     uint64
	records []Record
}

// New returns an enabled tracer. traceID labels every exported span;
// derive it from the run seed (never from the clock) so traces stay
// reproducible. An empty traceID defaults to "trace".
func New(traceID string) *Tracer {
	if traceID == "" {
		traceID = "trace"
	}
	return &Tracer{traceID: traceID}
}

// TraceID returns the tracer's trace identifier ("" on nil).
func (t *Tracer) TraceID() string {
	if t == nil {
		return ""
	}
	return t.traceID
}

// SetClock injects a real clock (e.g. a monotonic-nanosecond reading) in
// place of the default logical step counter. Real-clock traces are
// NON-deterministic by construction; the default output contains no
// wall-clock reading at all. Call before the first Start.
func (t *Tracer) SetClock(fn func() int64) {
	if t == nil {
		return
	}
	t.clock = fn
}

// Start opens a span under parent (nil parent = root) and returns it; nil
// on a nil tracer. IDs and start ticks are assigned in call order.
func (t *Tracer) Start(parent *Span, name string) *Span {
	if t == nil {
		return nil
	}
	return t.start(parent.ID(), Context{}, name)
}

// StartCtx opens a span under a propagated context: a context from this
// same tracer parents locally; a context from another process (a
// coordinator tracing across the wire) is recorded as the span's remote
// parent, so duotrace can stitch the two files together. An invalid
// context yields a root span.
func (t *Tracer) StartCtx(parent Context, name string) *Span {
	if t == nil {
		return nil
	}
	switch {
	case !parent.Valid():
		return t.start(0, Context{}, name)
	case parent.TraceID == t.traceID:
		return t.start(parent.SpanID, Context{}, name)
	default:
		return t.start(0, parent, name)
	}
}

func (t *Tracer) start(parent uint64, remote Context, name string) *Span {
	sp := &Span{tr: t, parent: parent, remote: remote, name: name}
	t.mu.Lock()
	t.seq++
	sp.id = t.seq
	if t.clock == nil {
		t.step++
		sp.start = t.step
	}
	t.mu.Unlock()
	if t.clock != nil {
		sp.start = t.clock()
	}
	return sp
}

// finish converts the span into an export record under the tracer lock.
func (t *Tracer) finish(s *Span) {
	var end int64
	if t.clock != nil {
		end = t.clock()
	}
	rec := Record{
		Trace:       t.traceID,
		ID:          s.id,
		Parent:      s.parent,
		RemoteTrace: s.remote.TraceID,
		RemoteSpan:  s.remote.SpanID,
		Name:        s.name,
		Start:       s.start,
	}
	if len(s.attrs) > 0 {
		rec.Attrs = make(map[string]any, len(s.attrs))
		for _, a := range s.attrs {
			switch a.kind {
			case attrInt:
				rec.Attrs[a.key] = a.i
			case attrFloat:
				rec.Attrs[a.key] = a.f
			default:
				rec.Attrs[a.key] = a.s
			}
		}
	}
	t.mu.Lock()
	if t.clock == nil {
		t.step++
		end = t.step
	}
	rec.End = end
	t.records = append(t.records, rec)
	t.mu.Unlock()
}

// Len returns the number of finished spans (0 on nil).
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.records)
}
