package trace

import (
	"bytes"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// buildTree records a small fixed span tree and returns its JSONL bytes.
func buildTree(t *testing.T) []byte {
	t.Helper()
	tr := New("t1")
	root := tr.Start(nil, "attack.run")
	round := tr.Start(root, "round")
	round.SetInt("round", 0)
	ret := tr.Start(round, "retrieve")
	ret.SetInt("queries", 2)
	ret.SetFloat("T", 0.5)
	ret.SetStr("outcome", "ok")
	ret.End()
	round.End()
	root.End()
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	return buf.Bytes()
}

func TestNilTracerIsInert(t *testing.T) {
	var tr *Tracer
	if got := tr.TraceID(); got != "" {
		t.Fatalf("nil TraceID = %q", got)
	}
	tr.SetClock(func() int64 { return 1 })
	sp := tr.Start(nil, "x")
	if sp != nil {
		t.Fatalf("nil tracer Start returned non-nil span")
	}
	sp.SetInt("a", 1)
	sp.SetFloat("b", 2)
	sp.SetStr("c", "d")
	sp.End()
	if got := sp.ID(); got != 0 {
		t.Fatalf("nil span ID = %d", got)
	}
	if ctx := sp.Ctx(); ctx.Valid() {
		t.Fatalf("nil span Ctx is valid: %+v", ctx)
	}
	if sp2 := tr.StartCtx(Context{TraceID: "t", SpanID: 3}, "y"); sp2 != nil {
		t.Fatalf("nil tracer StartCtx returned non-nil span")
	}
	if tr.Len() != 0 || tr.Records() != nil {
		t.Fatalf("nil tracer has records")
	}
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil || buf.Len() != 0 {
		t.Fatalf("nil tracer WriteJSONL wrote %q, err %v", buf.String(), err)
	}
}

func TestLogicalClockIsDeterministic(t *testing.T) {
	a := buildTree(t)
	b := buildTree(t)
	if !bytes.Equal(a, b) {
		t.Fatalf("identical runs produced different traces:\n%s\nvs\n%s", a, b)
	}
}

func TestSpanTreeStructure(t *testing.T) {
	recs, err := ReadJSONL(bytes.NewReader(buildTree(t)))
	if err != nil {
		t.Fatalf("ReadJSONL: %v", err)
	}
	if len(recs) != 3 {
		t.Fatalf("got %d records, want 3", len(recs))
	}
	// Records come back in span-ID (creation) order regardless of End order.
	names := []string{"attack.run", "round", "retrieve"}
	for i, r := range recs {
		if r.Name != names[i] {
			t.Fatalf("record %d name = %q, want %q", i, r.Name, names[i])
		}
		if r.ID != uint64(i+1) {
			t.Fatalf("record %d ID = %d, want %d", i, r.ID, i+1)
		}
		if r.Trace != "t1" {
			t.Fatalf("record %d trace = %q", i, r.Trace)
		}
	}
	if recs[0].Parent != 0 || recs[1].Parent != 1 || recs[2].Parent != 2 {
		t.Fatalf("parent chain wrong: %d %d %d", recs[0].Parent, recs[1].Parent, recs[2].Parent)
	}
	// Logical ticks: 3 starts then 3 ends = 6 ticks; each start < its end.
	if recs[0].Start != 1 || recs[2].End != 4 || recs[0].End != 6 {
		t.Fatalf("tick layout wrong: %+v", recs)
	}
	ret := recs[2]
	if q, ok := ret.Int("queries"); !ok || q != 2 {
		t.Fatalf("queries attr = %d, %v", q, ok)
	}
	if f, ok := ret.Float("T"); !ok || f != 0.5 {
		t.Fatalf("T attr = %v, %v", f, ok)
	}
	if s, ok := ret.Str("outcome"); !ok || s != "ok" {
		t.Fatalf("outcome attr = %q, %v", s, ok)
	}
	if _, ok := ret.Int("missing"); ok {
		t.Fatal("Int on missing key reported ok")
	}
}

func TestStartCtxParenting(t *testing.T) {
	tr := New("local")
	root := tr.Start(nil, "root")

	local := tr.StartCtx(root.Ctx(), "child")
	local.End()
	remote := tr.StartCtx(Context{TraceID: "other", SpanID: 9}, "server")
	remote.End()
	orphan := tr.StartCtx(Context{}, "orphan")
	orphan.End()
	root.End()

	recs := tr.Records()
	byName := map[string]Record{}
	for _, r := range recs {
		byName[r.Name] = r
	}
	if got := byName["child"]; got.Parent != root.ID() || got.RemoteSpan != 0 {
		t.Fatalf("same-trace ctx should parent locally: %+v", got)
	}
	if got := byName["server"]; got.Parent != 0 || got.RemoteTrace != "other" || got.RemoteSpan != 9 {
		t.Fatalf("cross-trace ctx should record remote parent: %+v", got)
	}
	if got := byName["orphan"]; got.Parent != 0 || got.RemoteSpan != 0 {
		t.Fatalf("invalid ctx should yield a root span: %+v", got)
	}
}

func TestInjectedClock(t *testing.T) {
	tr := New("clocked")
	var now int64
	tr.SetClock(func() int64 { now += 10; return now })
	sp := tr.Start(nil, "s")
	sp.End()
	recs := tr.Records()
	if len(recs) != 1 || recs[0].Start != 10 || recs[0].End != 20 {
		t.Fatalf("injected clock not used: %+v", recs)
	}
}

func TestDefaultTraceID(t *testing.T) {
	tr := New("")
	if tr.TraceID() != "trace" {
		t.Fatalf("empty trace ID not defaulted: %q", tr.TraceID())
	}
}

func TestReadJSONLRejectsGarbage(t *testing.T) {
	_, err := ReadJSONL(strings.NewReader("{\"trace\":\"t\"}\n\nnot json\n"))
	if err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Fatalf("want line-3 parse error, got %v", err)
	}
}

func TestHandlerServesFinishedSpansOnly(t *testing.T) {
	tr := New("srv")
	done := tr.Start(nil, "done")
	done.End()
	open := tr.Start(nil, "open") // never ended: must not appear
	_ = open

	rec := httptest.NewRecorder()
	Handler(tr).ServeHTTP(rec, httptest.NewRequest("GET", "/trace.jsonl", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/jsonl" {
		t.Fatalf("Content-Type = %q", ct)
	}
	recs, err := ReadJSONL(rec.Body)
	if err != nil {
		t.Fatalf("ReadJSONL: %v", err)
	}
	if len(recs) != 1 || recs[0].Name != "done" {
		t.Fatalf("handler served %+v, want only the finished span", recs)
	}
}

// TestOrderedConcurrencyContract exercises the documented pattern for
// parallel sections — spans pre-started and ended on the orchestration
// goroutine, workers writing attributes only on their own span — and
// checks the exported tree is identical at 1 and 8 workers.
func TestOrderedConcurrencyContract(t *testing.T) {
	run := func(workers int) []byte {
		tr := New("par")
		root := tr.Start(nil, "fanout")
		spans := make([]*Span, 16)
		for i := range spans {
			spans[i] = tr.Start(root, "node")
		}
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w; i < len(spans); i += workers {
					spans[i].SetInt("shard", int64(i))
				}
			}(w)
		}
		wg.Wait()
		for _, sp := range spans {
			sp.End()
		}
		root.End()
		var buf bytes.Buffer
		if err := tr.WriteJSONL(&buf); err != nil {
			t.Fatalf("WriteJSONL: %v", err)
		}
		return buf.Bytes()
	}
	one := run(1)
	eight := run(8)
	if !bytes.Equal(one, eight) {
		t.Fatalf("span tree differs across worker counts:\n%s\nvs\n%s", one, eight)
	}
}

func TestWithStageLabelsRunsBody(t *testing.T) {
	ran := false
	WithStageLabels("sparsequery", 3, func() { ran = true })
	if !ran {
		t.Fatal("WithStageLabels did not run the body")
	}
}
