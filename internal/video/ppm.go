package video

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
)

// WriteFramePPM writes one frame as a binary PPM (P6) image, the simplest
// portable format every image viewer opens — useful for eyeballing how
// (in)visible an adversarial perturbation is. Videos with one channel are
// written as grayscale RGB; with ≥3 channels the first three are used.
func WriteFramePPM(w io.Writer, v *Video, frame int) error {
	if frame < 0 || frame >= v.Frames() {
		return fmt.Errorf("video: frame %d out of range [0, %d)", frame, v.Frames())
	}
	h, wd, c := v.Height(), v.Width(), v.Channels()
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "P6\n%d %d\n255\n", wd, h)
	px := func(ch, y, x int) byte {
		val := v.Data.At(frame, ch, y, x)
		return byte(math.Max(0, math.Min(255, math.Round(val))))
	}
	for y := 0; y < h; y++ {
		for x := 0; x < wd; x++ {
			if c >= 3 {
				bw.WriteByte(px(0, y, x))
				bw.WriteByte(px(1, y, x))
				bw.WriteByte(px(2, y, x))
			} else {
				g := px(0, y, x)
				bw.WriteByte(g)
				bw.WriteByte(g)
				bw.WriteByte(g)
			}
		}
	}
	return bw.Flush()
}

// ExportPPMDir writes every frame of v into dir as frame-NNN.ppm files,
// creating the directory if needed. It returns the written paths.
func ExportPPMDir(dir string, v *Video) ([]string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("video: %w", err)
	}
	paths := make([]string, 0, v.Frames())
	for f := 0; f < v.Frames(); f++ {
		path := filepath.Join(dir, fmt.Sprintf("frame-%03d.ppm", f))
		file, err := os.Create(path)
		if err != nil {
			return nil, fmt.Errorf("video: %w", err)
		}
		if err := WriteFramePPM(file, v, f); err != nil {
			file.Close()
			return nil, err
		}
		if err := file.Close(); err != nil {
			return nil, fmt.Errorf("video: %w", err)
		}
		paths = append(paths, path)
	}
	return paths, nil
}

// AmplifiedDelta renders the difference between two videos as a video with
// the perturbation magnified by gain and re-centred at mid-gray, so sparse
// perturbations become visible in exported frames.
func AmplifiedDelta(original, adv *Video, gain float64) *Video {
	out := original.Clone()
	out.ID = original.ID + "+delta"
	od, ad, vd := out.Data.Data(), adv.Data.Data(), original.Data.Data()
	for i := range od {
		od[i] = 127.5 + gain*(ad[i]-vd[i])
	}
	out.Clip()
	return out
}
