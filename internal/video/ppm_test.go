package video

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteFramePPMHeaderAndSize(t *testing.T) {
	v := New(2, 3, 4, 5)
	v.Data.Fill(128)
	var buf bytes.Buffer
	if err := WriteFramePPM(&buf, v, 0); err != nil {
		t.Fatal(err)
	}
	out := buf.Bytes()
	if !strings.HasPrefix(string(out), "P6\n5 4\n255\n") {
		t.Fatalf("header = %q", out[:12])
	}
	header := len("P6\n5 4\n255\n")
	if len(out)-header != 4*5*3 {
		t.Errorf("payload = %d bytes, want %d", len(out)-header, 60)
	}
	// All pixels 128.
	for _, b := range out[header:] {
		if b != 128 {
			t.Fatalf("pixel byte %d", b)
		}
	}
}

func TestWriteFramePPMGrayscale(t *testing.T) {
	v := New(1, 1, 2, 2)
	v.Data.Fill(10)
	var buf bytes.Buffer
	if err := WriteFramePPM(&buf, v, 0); err != nil {
		t.Fatal(err)
	}
	payload := buf.Bytes()[len("P6\n2 2\n255\n"):]
	for _, b := range payload {
		if b != 10 {
			t.Fatalf("grayscale replication broken: %d", b)
		}
	}
}

func TestWriteFramePPMClampsOutOfRange(t *testing.T) {
	v := New(1, 3, 1, 1)
	// Values must already be clipped in practice, but the writer guards.
	v.Data.Data()[0] = -5
	v.Data.Data()[1] = 300
	v.Data.Data()[2] = 99.6
	var buf bytes.Buffer
	if err := WriteFramePPM(&buf, v, 0); err != nil {
		t.Fatal(err)
	}
	payload := buf.Bytes()[len("P6\n1 1\n255\n"):]
	if payload[0] != 0 || payload[1] != 255 || payload[2] != 100 {
		t.Errorf("payload = %v", payload)
	}
}

func TestWriteFramePPMBadFrame(t *testing.T) {
	v := New(2, 3, 2, 2)
	var buf bytes.Buffer
	if err := WriteFramePPM(&buf, v, 2); err == nil {
		t.Error("out-of-range frame accepted")
	}
	if err := WriteFramePPM(&buf, v, -1); err == nil {
		t.Error("negative frame accepted")
	}
}

func TestExportPPMDir(t *testing.T) {
	v := New(3, 3, 2, 2)
	v.Data.Fill(42)
	dir := filepath.Join(t.TempDir(), "frames")
	paths, err := ExportPPMDir(dir, v)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 3 {
		t.Fatalf("wrote %d frames", len(paths))
	}
	for _, p := range paths {
		if _, err := os.Stat(p); err != nil {
			t.Errorf("missing %s: %v", p, err)
		}
	}
}

func TestAmplifiedDelta(t *testing.T) {
	v := New(1, 1, 1, 2)
	v.Data.Fill(100)
	adv := v.Clone()
	adv.Data.Set(110, 0, 0, 0, 0) // +10 at one element
	amp := AmplifiedDelta(v, adv, 5)
	if got := amp.Data.At(0, 0, 0, 0); got != 127.5+50 {
		t.Errorf("amplified perturbed element = %g, want 177.5", got)
	}
	if got := amp.Data.At(0, 0, 0, 1); got != 127.5 {
		t.Errorf("amplified clean element = %g, want 127.5 (mid-gray)", got)
	}
}
