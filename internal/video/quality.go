package video

import "math"

// PSNR returns the peak signal-to-noise ratio (dB) between two videos of
// identical geometry, with peak 255. Identical videos return +Inf. Higher
// is less perceptible; adversarial-example work commonly reports ≥30 dB as
// "hard to notice".
func PSNR(a, b *Video) float64 {
	mse := a.Data.SquaredDistance(b.Data) / float64(a.Data.Len())
	if mse == 0 {
		return math.Inf(1)
	}
	return 10 * math.Log10(PixelMax*PixelMax/mse)
}

// SSIM returns the mean structural similarity between two videos of
// identical geometry: the global (non-windowed) SSIM statistic computed per
// frame/channel plane and averaged. Values are ≤1; 1 means identical.
// The constants follow the reference implementation (K1=0.01, K2=0.03,
// L=255).
func SSIM(a, b *Video) float64 {
	const (
		c1 = (0.01 * PixelMax) * (0.01 * PixelMax)
		c2 = (0.03 * PixelMax) * (0.03 * PixelMax)
	)
	n, cch := a.Frames(), a.Channels()
	plane := a.Height() * a.Width()
	ad, bd := a.Data.Data(), b.Data.Data()

	total := 0.0
	planes := 0
	for f := 0; f < n; f++ {
		for c := 0; c < cch; c++ {
			off := (f*cch + c) * plane
			ax := ad[off : off+plane]
			bx := bd[off : off+plane]
			var muA, muB float64
			for i := range ax {
				muA += ax[i]
				muB += bx[i]
			}
			muA /= float64(plane)
			muB /= float64(plane)
			var varA, varB, cov float64
			for i := range ax {
				da := ax[i] - muA
				db := bx[i] - muB
				varA += da * da
				varB += db * db
				cov += da * db
			}
			inv := 1 / float64(plane-1)
			if plane == 1 {
				inv = 1
			}
			varA *= inv
			varB *= inv
			cov *= inv
			num := (2*muA*muB + c1) * (2*cov + c2)
			den := (muA*muA + muB*muB + c1) * (varA + varB + c2)
			total += num / den
			planes++
		}
	}
	return total / float64(planes)
}

// SSIMWindowed returns the mean SSIM computed over sliding windows (the
// reference formulation of Wang et al.), which is sensitive to localized
// artifacts that the global statistic averages away. Window size adapts to
// small frames (min(8, H, W)) with stride half the window.
func SSIMWindowed(a, b *Video) float64 {
	const (
		c1 = (0.01 * PixelMax) * (0.01 * PixelMax)
		c2 = (0.03 * PixelMax) * (0.03 * PixelMax)
	)
	h, w := a.Height(), a.Width()
	win := 8
	if h < win {
		win = h
	}
	if w < win {
		win = w
	}
	stride := win / 2
	if stride < 1 {
		stride = 1
	}
	n, cch := a.Frames(), a.Channels()
	ad, bd := a.Data.Data(), b.Data.Data()
	plane := h * w

	total := 0.0
	count := 0
	for f := 0; f < n; f++ {
		for c := 0; c < cch; c++ {
			off := (f*cch + c) * plane
			for y0 := 0; y0+win <= h; y0 += stride {
				for x0 := 0; x0+win <= w; x0 += stride {
					var muA, muB float64
					for dy := 0; dy < win; dy++ {
						row := off + (y0+dy)*w + x0
						for dx := 0; dx < win; dx++ {
							muA += ad[row+dx]
							muB += bd[row+dx]
						}
					}
					m := float64(win * win)
					muA /= m
					muB /= m
					var varA, varB, cov float64
					for dy := 0; dy < win; dy++ {
						row := off + (y0+dy)*w + x0
						for dx := 0; dx < win; dx++ {
							da := ad[row+dx] - muA
							db := bd[row+dx] - muB
							varA += da * da
							varB += db * db
							cov += da * db
						}
					}
					inv := 1 / (m - 1)
					if win*win == 1 {
						inv = 1
					}
					varA *= inv
					varB *= inv
					cov *= inv
					num := (2*muA*muB + c1) * (2*cov + c2)
					den := (muA*muA + muB*muB + c1) * (varA + varB + c2)
					total += num / den
					count++
				}
			}
		}
	}
	if count == 0 {
		return 1
	}
	return total / float64(count)
}
