package video

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"duo/internal/tensor"
)

func randVideo(seed int64) *Video {
	rng := rand.New(rand.NewSource(seed))
	v := New(4, 3, 8, 8)
	v.Data.FillUniform(rng, 0, 255)
	return v
}

func TestPSNRIdentical(t *testing.T) {
	v := randVideo(1)
	if got := PSNR(v, v); !math.IsInf(got, 1) {
		t.Errorf("PSNR(v, v) = %g, want +Inf", got)
	}
}

func TestPSNRDecreasesWithNoise(t *testing.T) {
	v := randVideo(2)
	rng := rand.New(rand.NewSource(3))
	small := v.Clone()
	small.Data.AddInPlace(tensor.RandNormal(rng, 0, 1, v.Data.Shape()...))
	small.Clip()
	large := v.Clone()
	large.Data.AddInPlace(tensor.RandNormal(rng, 0, 20, v.Data.Shape()...))
	large.Clip()
	ps, pl := PSNR(v, small), PSNR(v, large)
	if ps <= pl {
		t.Errorf("PSNR ordering wrong: small-noise %g ≤ large-noise %g", ps, pl)
	}
	if ps < 30 {
		t.Errorf("1-unit noise PSNR = %g, expected ≥ 30 dB", ps)
	}
}

func TestSSIMIdentical(t *testing.T) {
	v := randVideo(4)
	if got := SSIM(v, v); math.Abs(got-1) > 1e-12 {
		t.Errorf("SSIM(v, v) = %g, want 1", got)
	}
}

func TestSSIMDecreasesWithPerturbation(t *testing.T) {
	v := randVideo(5)
	rng := rand.New(rand.NewSource(6))
	adv := v.Clone()
	adv.Data.AddInPlace(tensor.RandNormal(rng, 0, 40, v.Data.Shape()...))
	adv.Clip()
	got := SSIM(v, adv)
	if got >= 1 {
		t.Errorf("SSIM after heavy noise = %g, want < 1", got)
	}
}

func TestSSIMSparsePerturbationBarelyMoves(t *testing.T) {
	// A DUO-like sparse perturbation (a few ±30 impulses) must keep SSIM
	// near 1 — this is the quantitative form of "stealthy".
	v := randVideo(7)
	adv := v.Clone()
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 20; i++ {
		idx := rng.Intn(adv.Data.Len())
		adv.Data.Data()[idx] += 30
	}
	adv.Clip()
	if got := SSIM(v, adv); got < 0.95 {
		t.Errorf("sparse perturbation SSIM = %g, want ≥ 0.95", got)
	}
}

func TestPropSSIMBounds(t *testing.T) {
	f := func(seedA, seedB int64) bool {
		a, b := randVideo(seedA), randVideo(seedB)
		s := SSIM(a, b)
		return s <= 1+1e-9 && s >= -1-1e-9 && !math.IsNaN(s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropPSNRSymmetric(t *testing.T) {
	f := func(seedA, seedB int64) bool {
		a, b := randVideo(seedA), randVideo(seedB)
		pa, pb := PSNR(a, b), PSNR(b, a)
		if math.IsInf(pa, 1) {
			return math.IsInf(pb, 1)
		}
		return math.Abs(pa-pb) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSSIMWindowedIdentical(t *testing.T) {
	v := randVideo(9)
	if got := SSIMWindowed(v, v); math.Abs(got-1) > 1e-12 {
		t.Errorf("windowed SSIM(v,v) = %g", got)
	}
}

func TestSSIMWindowedPunishesLocalArtifacts(t *testing.T) {
	// A concentrated local artifact should hurt windowed SSIM at least as
	// much as the global statistic: the affected windows tank while the
	// global moments barely move.
	v := randVideo(10)
	adv := v.Clone()
	// Corrupt one 4×4 patch heavily in every frame.
	for f := 0; f < adv.Frames(); f++ {
		for y := 0; y < 4; y++ {
			for x := 0; x < 4; x++ {
				adv.Data.Set(255-adv.Data.At(f, 0, y, x), f, 0, y, x)
			}
		}
	}
	adv.Clip()
	windowed := SSIMWindowed(v, adv)
	global := SSIM(v, adv)
	if windowed >= 1 {
		t.Errorf("windowed SSIM = %g, want < 1", windowed)
	}
	if windowed > global+0.05 {
		t.Errorf("windowed %g should not exceed global %g for local artifacts", windowed, global)
	}
}

func TestSSIMWindowedTinyFrames(t *testing.T) {
	// Frames smaller than the window must still work (window shrinks).
	a := New(1, 1, 3, 3)
	a.Data.Fill(100)
	b := a.Clone()
	if got := SSIMWindowed(a, b); math.Abs(got-1) > 1e-12 {
		t.Errorf("tiny-frame SSIM = %g", got)
	}
}
