// Package video defines the video and perturbation types shared by the
// retrieval system and the attacks. A video is an [N, C, H, W] tensor of
// pixel values in [0, 255] (N frames, C channels), matching the paper's
// v ∈ R^{N×W×H×C} up to axis ordering.
package video

import (
	"fmt"

	"duo/internal/tensor"
)

// PixelMin and PixelMax bound valid pixel values; CLIP in Algorithm 2
// projects onto this range.
const (
	PixelMin = 0.0
	PixelMax = 255.0
)

// Video is a labelled video clip.
type Video struct {
	// Data has shape [N, C, H, W] with values in [PixelMin, PixelMax].
	Data *tensor.Tensor
	// Label is the category index (used for mAP ground truth).
	Label int
	// ID uniquely identifies the video within its corpus.
	ID string
}

// New returns a zero (black) video with the given geometry.
func New(frames, channels, height, width int) *Video {
	return &Video{Data: tensor.New(frames, channels, height, width)}
}

// FromTensor wraps an existing [N,C,H,W] tensor as a video.
func FromTensor(t *tensor.Tensor, label int, id string) *Video {
	if t.Rank() != 4 {
		panic(fmt.Sprintf("video: tensor rank %d, want 4", t.Rank()))
	}
	return &Video{Data: t, Label: label, ID: id}
}

// Frames returns the number of frames N.
func (v *Video) Frames() int { return v.Data.Dim(0) }

// Channels returns the number of channels C.
func (v *Video) Channels() int { return v.Data.Dim(1) }

// Height returns the frame height H.
func (v *Video) Height() int { return v.Data.Dim(2) }

// Width returns the frame width W.
func (v *Video) Width() int { return v.Data.Dim(3) }

// Pixels returns the per-frame pixel count B×C = C·H·W (elements per frame).
func (v *Video) Pixels() int { return v.Channels() * v.Height() * v.Width() }

// Clone returns a deep copy.
func (v *Video) Clone() *Video {
	return &Video{Data: v.Data.Clone(), Label: v.Label, ID: v.ID}
}

// Clip projects all pixels onto [PixelMin, PixelMax] in place and returns v.
func (v *Video) Clip() *Video {
	v.Data.ClampInPlace(PixelMin, PixelMax)
	return v
}

// Add returns a new video v + φ, clipped to the valid pixel range. The
// label and ID are preserved.
func (v *Video) Add(phi *tensor.Tensor) *Video {
	out := &Video{Data: v.Data.Add(phi), Label: v.Label, ID: v.ID}
	return out.Clip()
}

// UniformSample returns an n-frame snippet sampled uniformly from v
// (following [1], as in §V-A). If v already has n frames it is cloned.
func (v *Video) UniformSample(n int) *Video {
	total := v.Frames()
	if n <= 0 || n > total {
		panic(fmt.Sprintf("video: cannot sample %d frames from %d", n, total))
	}
	out := New(n, v.Channels(), v.Height(), v.Width())
	out.Label, out.ID = v.Label, v.ID
	for i := 0; i < n; i++ {
		src := i * total / n
		out.Data.Slice(i).CopyFrom(v.Data.Slice(src))
	}
	return out
}

// Perturbation is an additive adversarial perturbation φ with the paper's
// sparsity accounting.
type Perturbation struct {
	// Delta has the same [N,C,H,W] shape as the video it perturbs.
	Delta *tensor.Tensor
}

// NewPerturbation returns an all-zero perturbation matching v's geometry.
func NewPerturbation(v *Video) *Perturbation {
	return &Perturbation{Delta: tensor.New(v.Data.Shape()...)}
}

// Spa returns Σᵢ ‖φᵢ‖₀: the total number of perturbed elements across all
// frames (§V-A). Smaller is stealthier.
func (p *Perturbation) Spa() int { return p.Delta.L0() }

// PScore returns the perceptibility score (1/(N·B·C))·Σ|φᵢ| of [49]:
// the mean absolute perturbation per element. Smaller is stealthier.
func (p *Perturbation) PScore() float64 { return p.Delta.L1() / float64(p.Delta.Len()) }

// PerturbedFrames returns ‖φ‖₂,₀: the number of frames containing any
// perturbation.
func (p *Perturbation) PerturbedFrames() int { return p.Delta.L20() }

// LInf returns ‖φ‖∞, the largest per-element magnitude.
func (p *Perturbation) LInf() float64 { return p.Delta.LInf() }

// Apply returns v + φ clipped to the valid pixel range.
func (p *Perturbation) Apply(v *Video) *Video { return v.Add(p.Delta) }

// EffectiveDelta recomputes the perturbation that actually lands on v after
// pixel clipping, which is what an observer (and the sparsity metrics in
// the evaluation) sees.
func (p *Perturbation) EffectiveDelta(v *Video) *tensor.Tensor {
	adv := p.Apply(v)
	return adv.Data.Sub(v.Data)
}

// Resize returns a spatially resized copy of v using nearest-neighbour
// sampling — enough to adapt clips across gallery geometries (retrieval
// services normalize inputs to the model's expected resolution, §III-A).
func (v *Video) Resize(height, width int) *Video {
	if height <= 0 || width <= 0 {
		panic(fmt.Sprintf("video: bad resize target %d×%d", height, width))
	}
	out := New(v.Frames(), v.Channels(), height, width)
	out.Label, out.ID = v.Label, v.ID
	srcH, srcW := v.Height(), v.Width()
	for f := 0; f < v.Frames(); f++ {
		for c := 0; c < v.Channels(); c++ {
			for y := 0; y < height; y++ {
				sy := y * srcH / height
				for x := 0; x < width; x++ {
					sx := x * srcW / width
					out.Data.Set(v.Data.At(f, c, sy, sx), f, c, y, x)
				}
			}
		}
	}
	return out
}
