package video

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"duo/internal/tensor"
)

func TestNewGeometry(t *testing.T) {
	v := New(8, 3, 12, 10)
	if v.Frames() != 8 || v.Channels() != 3 || v.Height() != 12 || v.Width() != 10 {
		t.Errorf("geometry = %d,%d,%d,%d", v.Frames(), v.Channels(), v.Height(), v.Width())
	}
	if v.Pixels() != 3*12*10 {
		t.Errorf("Pixels = %d", v.Pixels())
	}
}

func TestFromTensorRejectsWrongRank(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("FromTensor rank-2 did not panic")
		}
	}()
	FromTensor(tensor.New(2, 2), 0, "x")
}

func TestClipBoundsPixels(t *testing.T) {
	v := New(1, 1, 1, 2)
	v.Data.Set(-50, 0, 0, 0, 0)
	v.Data.Set(400, 0, 0, 0, 1)
	v.Clip()
	if v.Data.At(0, 0, 0, 0) != PixelMin || v.Data.At(0, 0, 0, 1) != PixelMax {
		t.Errorf("clip = %v", v.Data)
	}
}

func TestAddClipsAndPreservesIdentity(t *testing.T) {
	v := New(1, 1, 1, 1)
	v.Label, v.ID = 7, "vid7"
	v.Data.Set(250, 0, 0, 0, 0)
	phi := tensor.New(1, 1, 1, 1)
	phi.Set(30, 0, 0, 0, 0)
	adv := v.Add(phi)
	if adv.Data.At(0, 0, 0, 0) != 255 {
		t.Errorf("Add not clipped: %g", adv.Data.At(0, 0, 0, 0))
	}
	if adv.Label != 7 || adv.ID != "vid7" {
		t.Error("Add lost label/ID")
	}
	if v.Data.At(0, 0, 0, 0) != 250 {
		t.Error("Add mutated original")
	}
}

func TestUniformSample(t *testing.T) {
	v := New(32, 1, 1, 1)
	for i := 0; i < 32; i++ {
		v.Data.Set(float64(i), i, 0, 0, 0)
	}
	s := v.UniformSample(16)
	if s.Frames() != 16 {
		t.Fatalf("sampled %d frames", s.Frames())
	}
	// Every other frame: 0, 2, 4, ...
	for i := 0; i < 16; i++ {
		if got := s.Data.At(i, 0, 0, 0); got != float64(2*i) {
			t.Errorf("frame %d = %g, want %d", i, got, 2*i)
		}
	}
	same := v.UniformSample(32)
	if !same.Data.Equal(v.Data, 0) {
		t.Error("full sample differs")
	}
}

func TestUniformSamplePanicsWhenTooMany(t *testing.T) {
	v := New(4, 1, 1, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic sampling 8 from 4")
		}
	}()
	v.UniformSample(8)
}

func TestPerturbationMetrics(t *testing.T) {
	v := New(4, 1, 2, 2) // 4 frames × 4 elems
	p := NewPerturbation(v)
	if p.Spa() != 0 || p.PScore() != 0 || p.PerturbedFrames() != 0 {
		t.Error("zero perturbation has nonzero metrics")
	}
	p.Delta.Set(30, 0, 0, 0, 0)
	p.Delta.Set(-30, 0, 0, 1, 1)
	p.Delta.Set(10, 2, 0, 0, 0)
	if got := p.Spa(); got != 3 {
		t.Errorf("Spa = %d, want 3", got)
	}
	if got := p.PerturbedFrames(); got != 2 {
		t.Errorf("PerturbedFrames = %d, want 2", got)
	}
	wantP := (30.0 + 30.0 + 10.0) / 16.0
	if got := p.PScore(); math.Abs(got-wantP) > 1e-12 {
		t.Errorf("PScore = %g, want %g", got, wantP)
	}
	if got := p.LInf(); got != 30 {
		t.Errorf("LInf = %g", got)
	}
}

func TestEffectiveDeltaAccountsForClipping(t *testing.T) {
	v := New(1, 1, 1, 1)
	v.Data.Set(250, 0, 0, 0, 0)
	p := NewPerturbation(v)
	p.Delta.Set(30, 0, 0, 0, 0)
	eff := p.EffectiveDelta(v)
	if eff.At(0, 0, 0, 0) != 5 {
		t.Errorf("effective delta = %g, want 5 (clipped at 255)", eff.At(0, 0, 0, 0))
	}
}

func TestPropApplyAlwaysInRange(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(scale float64) bool {
		if math.IsNaN(scale) || math.IsInf(scale, 0) {
			return true
		}
		v := New(2, 1, 2, 2)
		v.Data.FillUniform(rng, 0, 255)
		p := NewPerturbation(v)
		p.Delta.FillNormal(rng, 0, math.Mod(math.Abs(scale), 1000))
		adv := p.Apply(v)
		return adv.Data.Min() >= PixelMin && adv.Data.Max() <= PixelMax
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropSpaNeverExceedsElements(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := func(n uint8) bool {
		v := New(2, 1, 2, 2)
		p := NewPerturbation(v)
		p.Delta.FillNormal(rng, 0, float64(n%10))
		return p.Spa() <= p.Delta.Len() && p.PerturbedFrames() <= v.Frames()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestResizeIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	v := New(2, 3, 6, 6)
	v.Data.FillUniform(rng, 0, 255)
	same := v.Resize(6, 6)
	if !same.Data.Equal(v.Data, 0) {
		t.Error("identity resize changed pixels")
	}
	if same.Label != v.Label || same.ID != v.ID {
		t.Error("resize lost identity")
	}
}

func TestResizeUpDown(t *testing.T) {
	v := New(1, 1, 2, 2)
	v.Data.Set(10, 0, 0, 0, 0)
	v.Data.Set(20, 0, 0, 0, 1)
	v.Data.Set(30, 0, 0, 1, 0)
	v.Data.Set(40, 0, 0, 1, 1)
	up := v.Resize(4, 4)
	if up.Height() != 4 || up.Width() != 4 {
		t.Fatalf("up geometry %dx%d", up.Height(), up.Width())
	}
	// Nearest-neighbour: top-left 2×2 block replicates value 10.
	for _, pos := range [][2]int{{0, 0}, {0, 1}, {1, 0}, {1, 1}} {
		if got := up.Data.At(0, 0, pos[0], pos[1]); got != 10 {
			t.Errorf("up[%v] = %g, want 10", pos, got)
		}
	}
	down := up.Resize(2, 2)
	if !down.Data.Equal(v.Data, 0) {
		t.Error("up-then-down did not restore the original")
	}
}

func TestResizePanicsOnBadTarget(t *testing.T) {
	v := New(1, 1, 2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for 0-width resize")
		}
	}()
	v.Resize(2, 0)
}
