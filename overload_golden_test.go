package duo

// Golden-pipeline chaos test for overload: the full DUO attack runs
// against a sharded victim whose nodes shed a seeded fraction of calls
// with retrieval.ErrOverloaded. The retry layer absorbs sheds with
// backoff and the attack layer refunds any that surface, so the run must
// produce the exact same fingerprint as the same pipeline with shedding
// disabled — and the same fingerprint, shed counts, and span trace at
// workers=1 and workers=4.

import (
	"reflect"
	"testing"
	"time"

	"duo/internal/parallel"
	"duo/internal/retrieval"
)

// overloadFingerprint summarizes one pipeline run for equality checks.
type overloadFingerprint struct {
	APBefore float64
	APAfter  float64
	Spa      int
	Frames   int
	PScore   float64
	Queries  int
	TopM     []string
	AdvSHA   string
}

// overloadRun is one full pipeline execution against the overloaded
// cluster, with everything needed for cross-run comparison.
type overloadRun struct {
	fp overloadFingerprint
	// perNodeSheds is each FaultTransport's injected overload count.
	perNodeSheds []int64
	// health is the cluster's post-run per-node accounting.
	health []retrieval.NodeHealth
	// surfacedSheds is the attack.run span's shed_total: sheds that
	// outlived the transport retries and reached the attack loop.
	surfacedSheds int64
	reg           *Telemetry
	tr            *Tracer
}

// overloadGoldenRun builds the golden system, steals the surrogate against
// the clean victim, then swaps the victim for a 2-node cluster whose nodes
// shed with probability pOverload on seeded schedules (absorbed by a
// no-sleep retry layer), and runs the golden attack through it with the
// given optimizer strategy ("" = the sparsequery default).
func overloadGoldenRun(t *testing.T, pOverload float64, strategy string) *overloadRun {
	t.Helper()
	sys, err := NewSystem(SystemOptions{
		Categories: 3, TrainPerCategory: 4, TestPerCategory: 2,
		Frames: 6, Height: 10, Width: 10,
		FeatureDim: 12, TrainEpochs: 2, M: 6, Seed: 17,
	})
	if err != nil {
		t.Fatal(err)
	}
	reg := NewTelemetry()
	tr := NewTracer("overload-golden")
	sys.SetTelemetry(reg)
	sys.SetTrace(tr)
	surr, err := sys.StealSurrogate(SurrogateOptions{MaxSamples: 12, Epochs: 3})
	if err != nil {
		t.Fatal(err)
	}

	// The overloaded victim: same model, same gallery, split over two
	// nodes. Fault seeds are fixed so the shed schedule is a function of
	// the call sequence alone; retry backoff sleeps are no-ops so the
	// absorbed sheds cost test time nothing.
	model := sys.VictimModel()
	train := sys.Corpus.Train
	half := len(train) / 2
	parts := [][]*Video{train[:half], train[half:]}
	faults := make([]*retrieval.FaultTransport, len(parts))
	transports := make([]retrieval.Transport, len(parts))
	for i, part := range parts {
		faults[i] = retrieval.NewFaultTransport(
			&retrieval.LocalTransport{Shard: retrieval.NewShard(model, part)},
			retrieval.FaultConfig{Seed: int64(101 + i), POverload: pOverload},
		)
		transports[i] = retrieval.NewRetryTransport(faults[i], retrieval.RetryConfig{
			MaxAttempts: 6,
			Seed:        int64(201 + i),
			Sleep:       func(time.Duration) {},
		})
	}
	cl := retrieval.NewCluster(model, transports).SetPolicy(retrieval.RequireAll())
	cl.SetTelemetry(reg)
	cl.SetTrace(tr)
	defer cl.Close()
	sys.Victim = cl

	pair := sys.SamplePairs(5, 1)[0]
	rep, err := sys.Attack(pair.Original, pair.Target, surr, AttackOptions{Queries: 80, Strategy: strategy, Telemetry: reg})
	if err != nil {
		t.Fatal(err)
	}

	run := &overloadRun{
		fp: overloadFingerprint{
			APBefore: rep.APBefore,
			APAfter:  rep.APAfter,
			Spa:      rep.Spa,
			Frames:   rep.PerturbedFrames,
			PScore:   rep.PScore,
			Queries:  rep.Queries,
			TopM:     retrieval.IDs(sys.Retrieve(rep.Adv, sys.M)),
			AdvSHA:   videoSHA256(rep.Adv),
		},
		health: cl.Health(),
		reg:    reg,
		tr:     tr,
	}
	for _, f := range faults {
		run.perNodeSheds = append(run.perNodeSheds, f.Stats().Overloads)
	}
	for _, r := range tr.Records() {
		if r.Name == "attack.run" {
			run.surfacedSheds, _ = r.Int("shed_total")
		}
	}
	return run
}

func TestGoldenPipelineUnderOverload(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline run")
	}
	prev := parallel.SetWorkers(1)
	defer parallel.SetWorkers(prev)

	clean := overloadGoldenRun(t, 0, "")
	over := overloadGoldenRun(t, 0.3, "")

	// Graceful degradation, end to end: shedding 30% of node calls changes
	// nothing observable about the attack — retries absorb the sheds and
	// refunds keep billing equal to what the victim actually served, so the
	// adversarial video, the retrieval lists, and the query count are
	// bitwise-identical to the clean run.
	if !reflect.DeepEqual(clean.fp, over.fp) {
		t.Errorf("overload changed the pipeline fingerprint:\nclean %+v\nover  %+v", clean.fp, over.fp)
	}
	var injected int64
	for _, n := range over.perNodeSheds {
		injected += n
	}
	if injected == 0 {
		t.Fatal("overload schedule never fired; the test exercises nothing")
	}
	for _, n := range clean.perNodeSheds {
		if n != 0 {
			t.Fatalf("clean run injected sheds: %v", clean.perNodeSheds)
		}
	}
	// Sheds are liveness, not failure: cluster health must show every node
	// healthy with zero failures, whatever the admission weather was.
	for _, h := range over.health {
		if h.Failures != 0 || h.ConsecutiveFailures != 0 {
			t.Errorf("node %d: %d failures (%d consecutive) — sheds must not count as failures",
				h.Node, h.Failures, h.ConsecutiveFailures)
		}
	}

	// duotrace's invariant on the overloaded run: every billed query is
	// attributed to a retrieve leaf, and telemetry agrees with the report.
	var attributed int64
	for _, r := range over.tr.Records() {
		q, ok := r.Int("queries")
		if !ok {
			continue
		}
		if r.Name != "retrieve" {
			t.Errorf("span %q carries a `queries` attr; reserved for retrieve leaves", r.Name)
		}
		attributed += q
	}
	if attributed != int64(over.fp.Queries) {
		t.Errorf("trace attributes %d queries, billed %d", attributed, over.fp.Queries)
	}
	snap := over.reg.Snapshot()
	if got := snap.Counters["attack.queries"]; got != int64(over.fp.Queries) {
		t.Errorf("telemetry attack.queries = %d, billed %d", got, over.fp.Queries)
	}
	if got := snap.Counters["attack.shed"]; got != over.surfacedSheds {
		t.Errorf("telemetry attack.shed = %d, attack.run shed_total = %d", got, over.surfacedSheds)
	}

	// The same seeded overload schedule at workers=4: identical fingerprint,
	// identical per-node shed counts, identical cluster policy outcomes,
	// identical span trace — overload handling sits entirely on the
	// deterministic orchestration path.
	parallel.SetWorkers(4)
	over4 := overloadGoldenRun(t, 0.3, "")
	if !reflect.DeepEqual(over.fp, over4.fp) {
		t.Errorf("workers=4 fingerprint differs:\n w1 %+v\n w4 %+v", over.fp, over4.fp)
	}
	if !reflect.DeepEqual(over.perNodeSheds, over4.perNodeSheds) {
		t.Errorf("per-node shed counts differ: w1 %v, w4 %v", over.perNodeSheds, over4.perNodeSheds)
	}
	if !reflect.DeepEqual(over.health, over4.health) {
		t.Errorf("cluster health differs:\n w1 %+v\n w4 %+v", over.health, over4.health)
	}
	if over.surfacedSheds != over4.surfacedSheds {
		t.Errorf("surfaced sheds differ: w1 %d, w4 %d", over.surfacedSheds, over4.surfacedSheds)
	}
	if f1, f4 := traceSHA256(t, over.tr), traceSHA256(t, over4.tr); f1 != f4 {
		t.Errorf("trace fingerprint differs between workers=1 (%s) and workers=4 (%s)", f1, f4)
	}
}

// TestOverloadInvarianceByStrategy extends the chaos contract to every
// registered optimizer strategy: shed refunds are a harness property, so a
// 30%-shedding victim must leave each strategy's fingerprint — adversarial
// bits, retrieval list, query count — bitwise-identical to its clean run.
func TestOverloadInvarianceByStrategy(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline runs")
	}
	prev := parallel.SetWorkers(1)
	defer parallel.SetWorkers(prev)

	for _, strategy := range Strategies() {
		strategy := strategy
		t.Run(strategy, func(t *testing.T) {
			clean := overloadGoldenRun(t, 0, strategy)
			over := overloadGoldenRun(t, 0.3, strategy)
			if !reflect.DeepEqual(clean.fp, over.fp) {
				t.Errorf("overload changed the %s fingerprint:\nclean %+v\nover  %+v", strategy, clean.fp, over.fp)
			}
			var injected int64
			for _, n := range over.perNodeSheds {
				injected += n
			}
			if injected == 0 {
				t.Fatal("overload schedule never fired; the test exercises nothing")
			}
			// Billing stays exact under shedding: trace attribution and
			// telemetry both agree with the refunded query count.
			var attributed int64
			for _, r := range over.tr.Records() {
				if q, ok := r.Int("queries"); ok {
					attributed += q
				}
			}
			if attributed != int64(over.fp.Queries) {
				t.Errorf("trace attributes %d queries, billed %d", attributed, over.fp.Queries)
			}
			if got := over.reg.Snapshot().Counters["attack.queries"]; got != int64(over.fp.Queries) {
				t.Errorf("telemetry attack.queries = %d, billed %d", got, over.fp.Queries)
			}
			if got := over.reg.Snapshot().Counters["attack.shed"]; got != over.surfacedSheds {
				t.Errorf("telemetry attack.shed = %d, attack.run shed_total = %d", got, over.surfacedSheds)
			}
		})
	}
}
